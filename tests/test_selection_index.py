"""Differential tests for the indexed selection hot path.

Three layers, mirroring the equivalence contract of
:mod:`repro.selection.index`:

* planner/index unit tests — edge intervals (open/closed endpoints,
  ``>=``/``<=`` boundary equality), contradiction short-circuit *without
  evaluation*, MY-shadowing, opaque attributes, availability masking;
* differential suites — indexed vs naive paths must return identical
  ordered results for Matchmaker.match/gangmatch, vgES cluster matching
  and SWORD queries, including a Hypothesis sweep over random platforms
  and specifications rendered in all three languages;
* end-to-end replay — a seeded :class:`SelectionPipeline` run under churn
  must produce byte-identical ``SelectionOutcome.to_dict()`` with
  ``indexing="on"`` and ``"off"``.
"""

from __future__ import annotations

import hypothesis.strategies as st
import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings

from repro.core.generator import ResourceSpecification
from repro.dag import montage_dag, montage_level_counts
from repro.resources.binding import Binder
from repro.resources.churn import ChurnConfig, ChurnEvent, ResourceChurn
from repro.resources.generator import ClusterSpec
from repro.resources.platform import Platform
from repro.selection.classad import Matchmaker, parse_classad
from repro.selection.classad.builders import machine_ads
from repro.selection.classad.parser import ClassAd, Literal, parse_expression
from repro.selection.index import (
    INDEXING_MODES,
    HostIndex,
    plan_constraint,
    validate_indexing,
)
from repro.selection.pipeline import PipelineConfig, SelectionPipeline
from repro.selection.sword import SwordEngine
from repro.selection.vgdl import VgES, parse_vgdl


def make_platform(
    n_clusters: int = 20, hosts_per_cluster: int = 10, seed: int = 0
) -> Platform:
    rng = np.random.default_rng(seed)
    clusters = [
        ClusterSpec(
            cluster_id=c,
            n_hosts=hosts_per_cluster,
            clock_ghz=float(rng.choice([1.0, 1.5, 2.0, 2.5, 3.0, 3.5])),
            memory_mb=int(rng.choice([512, 1024, 2048, 4096])),
            arch=str(rng.choice(["x86", "sparc"])),
            os=str(rng.choice(["LINUX", "SOLARIS"])),
        )
        for c in range(n_clusters)
    ]
    bw = np.full((n_clusters, n_clusters), 1.0e9)
    return Platform(clusters=clusters, bandwidth_bps=bw)


# ----------------------------------------------------------------------
# Planner unit tests
# ----------------------------------------------------------------------
def test_indexing_mode_validation():
    for mode in INDEXING_MODES:
        assert validate_indexing(mode) == mode
    with pytest.raises(ValueError):
        validate_indexing("sometimes")
    with pytest.raises(ValueError):
        Matchmaker([], indexing="yes")


def test_planner_open_vs_closed_endpoints():
    strict = plan_constraint(parse_expression("TARGET.Clock > 2000"))
    closed = plan_constraint(parse_expression("TARGET.Clock >= 2000"))
    assert strict.intervals["clock"].lo_open is True
    assert closed.intervals["clock"].lo_open is False
    hi = plan_constraint(parse_expression("TARGET.Clock < 2000 && TARGET.Clock >= 100"))
    assert hi.intervals["clock"].hi_open is True
    assert hi.intervals["clock"].lo == 100.0


def test_planner_boundary_equality_is_not_a_contradiction():
    plan = plan_constraint(
        parse_expression("TARGET.Clock >= 2000 && TARGET.Clock <= 2000")
    )
    assert not plan.contradiction
    iv = plan.intervals["clock"]
    assert iv.lo == iv.hi == 2000.0 and not iv.is_empty


def test_planner_contradiction_detection():
    plan = plan_constraint(
        parse_expression("TARGET.Clock >= 3000 && TARGET.Clock <= 2000")
    )
    assert plan.contradiction and plan.prunes
    eq = plan_constraint(
        parse_expression('TARGET.OpSys == "LINUX" && TARGET.OpSys == "SOLARIS"')
    )
    assert eq.contradiction


def test_planner_strict_flag_and_constant_conjuncts():
    # A bare non-boolean constant constraint never matches at top level...
    top = plan_constraint(parse_expression("5"))
    assert top.strict and top.contradiction
    # ...but coerces to true inside a && chain (Condor numeric truthiness).
    chain = plan_constraint(parse_expression("TARGET.Clock >= 2000 && 5"))
    assert not chain.strict and not chain.contradiction
    false_chain = plan_constraint(parse_expression("TARGET.Clock >= 2000 && 0"))
    assert false_chain.contradiction


def test_planner_respects_request_shadowing():
    request = parse_classad("[ Clock = 9999; Requirements = Clock >= 3000 ]")
    plan = plan_constraint(request.get("Requirements"), request=request)
    # Unscoped Clock resolves MY-first to the request's own value, so the
    # clause must stay residual, not become a machine-column probe.
    assert "clock" not in plan.intervals
    assert len(plan.residual) == 1
    scoped = plan_constraint(
        parse_expression("TARGET.Clock >= 3000"), request=request
    )
    assert "clock" in scoped.intervals


def test_planner_foreign_scope_goes_residual():
    plan = plan_constraint(
        parse_expression("cpu.Clock >= 3000"), machine_scopes=("target",)
    )
    assert not plan.intervals and len(plan.residual) == 1
    gang = plan_constraint(
        parse_expression("cpu.Clock >= 3000"), machine_scopes=("target", "cpu")
    )
    assert "clock" in gang.intervals


def test_contradiction_short_circuits_without_evaluation(monkeypatch):
    """A contradictory constraint must yield zero candidates with no
    ClassAd evaluation at all."""
    plat = make_platform(4)
    ads = machine_ads(plat, range(plat.n_hosts))
    mm = Matchmaker(list(ads), indexing="on")
    mm._host_index()  # build before evaluation is forbidden

    def boom(*a, **k):  # pragma: no cover - must never run
        raise AssertionError("evaluate() called on a contradictory plan")

    import repro.selection.classad.matchmaker as mmod
    import repro.selection.index as imod

    monkeypatch.setattr(mmod, "evaluate", boom)
    monkeypatch.setattr(imod, "evaluate", boom)
    req = parse_classad(
        "[ Requirements = TARGET.Clock >= 3000 && TARGET.Clock <= 2000; Rank = 0 ]"
    )
    assert mm.match(req) == []


# ----------------------------------------------------------------------
# HostIndex unit tests
# ----------------------------------------------------------------------
def test_host_index_range_and_equality_queries():
    plat = make_platform(10)
    index = HostIndex.from_platform(plat)
    table = plat.host_table()
    plan = plan_constraint(
        parse_expression('Clock >= 2000 && OpSys == "linux"'),
        machine_scopes=("my", "self"),
    )
    rows, full = index.candidates(plan)
    assert full.size == 0
    expected = np.flatnonzero(
        (table["clock"] >= 2000)
        & (np.char.lower(table["opsys"].astype(str)) == "linux")
    )
    np.testing.assert_array_equal(rows, expected)
    # Case-insensitivity: the query value's case must not matter.
    shout = plan_constraint(
        parse_expression('OpSys == "LINUX"'), machine_scopes=("my", "self")
    )
    np.testing.assert_array_equal(
        index.candidates(shout)[0],
        np.flatnonzero(np.char.lower(table["opsys"].astype(str)) == "linux"),
    )


def test_host_index_boundary_rows_follow_endpoint_openness():
    ads = [ClassAd.from_values({"Clock": float(v)}) for v in (1000, 2000, 3000)]
    index = HostIndex.from_ads(ads)
    closed = plan_constraint(parse_expression("TARGET.Clock >= 2000"))
    opened = plan_constraint(parse_expression("TARGET.Clock > 2000"))
    np.testing.assert_array_equal(index.candidates(closed)[0], [1, 2])
    np.testing.assert_array_equal(index.candidates(opened)[0], [2])
    below = plan_constraint(parse_expression("TARGET.Clock <= 2000"))
    np.testing.assert_array_equal(index.candidates(below)[0], [0, 1])


def test_host_index_opaque_attributes_need_full_check():
    ads = [
        ClassAd.from_values({"Clock": 3000.0}),
        ClassAd.from_values({"Clock": 1000.0}),
    ]
    expr_ad = ClassAd()
    expr_ad["Clock"] = parse_expression("1500 + 1600")  # non-literal: opaque
    ads.append(expr_ad)
    index = HostIndex.from_ads(ads)
    plan = plan_constraint(parse_expression("TARGET.Clock >= 2000"))
    rows, full = index.candidates(plan)
    np.testing.assert_array_equal(rows, [0, 2])
    np.testing.assert_array_equal(full, [2])


def test_host_index_missing_attribute_prunes_row():
    ads = [ClassAd.from_values({"Clock": 3000.0}), ClassAd.from_values({"Memory": 512})]
    index = HostIndex.from_ads(ads)
    plan = plan_constraint(parse_expression("TARGET.Clock >= 1000"))
    np.testing.assert_array_equal(index.candidates(plan)[0], [0])


def test_host_index_ignores_non_indexable_literals():
    ads = [ClassAd.from_values({"Started": True}), ClassAd.from_values({"Started": False})]
    index = HostIndex.from_ads(ads)
    assert "started" not in index.numeric and "started" not in index.categorical


# ----------------------------------------------------------------------
# Invalidation under churn and binding
# ----------------------------------------------------------------------
def test_availability_mask_hides_and_resurfaces_hosts():
    plat = make_platform(6)
    index = HostIndex.from_platform(plat)
    plan = plan_constraint(
        parse_expression("Clock >= 0"), machine_scopes=("my", "self")
    )
    all_rows = index.candidates(plan)[0]
    assert all_rows.size == plat.n_hosts
    index.mark_unavailable([3, 5, 7])
    rows = index.candidates(plan)[0]
    assert not {3, 5, 7} & set(rows.tolist())
    index.mark_available([5])
    rows = index.candidates(plan)[0]
    assert 5 in rows and 3 not in rows


def test_apply_event_covers_all_churn_kinds():
    plat = make_platform(4)
    index = HostIndex.from_platform(plat)
    plan = plan_constraint(
        parse_expression("Clock >= 0"), machine_scopes=("my", "self")
    )
    index.apply_event(ChurnEvent(time=1.0, kind="fail", hosts=(0, 1)))
    index.apply_event(ChurnEvent(time=2.0, kind="bind", hosts=(2,)))
    rows = set(index.candidates(plan)[0].tolist())
    assert not {0, 1, 2} & rows
    index.apply_event(ChurnEvent(time=3.0, kind="join", hosts=(1,)))
    index.apply_event(ChurnEvent(time=4.0, kind="release", hosts=(2,)))
    rows = set(index.candidates(plan)[0].tolist())
    assert {1, 2} <= rows and 0 not in rows
    unknown = type("FakeEvent", (), {"kind": "evaporate", "hosts": ()})()
    with pytest.raises(ValueError):
        index.apply_event(unknown)


def test_incremental_updates_match_full_rebuild_under_churn():
    """Folding a churn trace into the mask event-by-event must equal a
    fresh index built from the final unavailable set — a stale index must
    never surface a dead or bound host."""
    plat = make_platform(12, seed=4)
    churn = ResourceChurn.from_config(
        plat,
        ChurnConfig(fail_rate=0.02, rejoin_s=100.0, competitor_rate=0.05,
                    competitor_hold_s=50.0, utilization=0.0, seed=7),
        Binder(plat),
    )
    incremental = HostIndex.from_platform(plat)
    plan = plan_constraint(
        parse_expression("Clock >= 0"), machine_scopes=("my", "self")
    )
    for t in (50.0, 150.0, 400.0, 900.0):
        for event in churn.advance(t):
            incremental.apply_event(event)
        banned = churn.unavailable() | churn.binder.bound_hosts
        rebuilt = HostIndex.from_platform(plat, unavailable=banned)
        inc_rows = incremental.candidates(plan)[0]
        np.testing.assert_array_equal(inc_rows, rebuilt.candidates(plan)[0])
        assert not banned & set(inc_rows.tolist())


def test_binder_bind_release_invalidation():
    plat = make_platform(5)
    binder = Binder(plat)
    index = HostIndex.from_platform(plat)
    plan = plan_constraint(
        parse_expression("Clock >= 0"), machine_scopes=("my", "self")
    )
    taken = binder.bind(np.array([2, 3, 11], dtype=np.int64))
    index.mark_unavailable(taken)
    assert not {2, 3, 11} & set(index.candidates(plan)[0].tolist())
    binder.release(np.array([3], dtype=np.int64))
    index.mark_available([3])
    rows = set(index.candidates(plan)[0].tolist())
    assert 3 in rows and 2 not in rows


# ----------------------------------------------------------------------
# Differential equivalence: indexed vs naive
# ----------------------------------------------------------------------
def _match_key(matches):
    return [(id(m.machine), m.rank) for m in matches]


EDGE_REQUESTS = [
    # The generator's shape: range + equality + rank.
    '[ Requirements = TARGET.Clock >= 2500 && TARGET.OpSys == "LINUX"'
    " && TARGET.Memory >= 1000; Rank = TARGET.Clock ]",
    # Boundary equality on both ends.
    "[ Requirements = TARGET.Clock >= 2000 && TARGET.Clock <= 2000; Rank = 0 ]",
    # Contradiction: must match nothing on both paths.
    "[ Requirements = TARGET.Clock > 3000 && TARGET.Clock < 2000; Rank = 0 ]",
    # Numeric truthiness inside a chain vs strict top level.
    "[ Requirements = TARGET.Clock >= 2000 && 5; Rank = 0 ]",
    "[ Requirements = 5; Rank = 0 ]",
    # UNDEFINED reference and ERROR-typed comparison.
    "[ Requirements = TARGET.NoSuchAttr >= 10; Rank = 0 ]",
    '[ Requirements = TARGET.Clock >= "fast"; Rank = 0 ]',
    # Mixed-case string equality (evaluator compares case-insensitively).
    '[ Requirements = TARGET.OpSys == "linux"; Rank = TARGET.Memory ]',
    # Request-ad shadowing: unscoped Clock is the request's own.
    "[ Clock = 9999; Requirements = Clock >= 3000 && TARGET.Memory >= 512; Rank = 0 ]",
    # Disjunction: not indexable, must fall back cleanly.
    '[ Requirements = TARGET.Clock >= 3000 || TARGET.OpSys == "SOLARIS"; Rank = 0 ]',
    # No Requirements at all.
    "[ Rank = TARGET.Clock ]",
]


@pytest.mark.parametrize("text", EDGE_REQUESTS)
def test_match_indexed_equals_naive(text):
    plat = make_platform(15, seed=2)
    ads = machine_ads(plat, range(plat.n_hosts))
    req = parse_classad(text)
    naive = Matchmaker(list(ads), indexing="off").match(req)
    for mode in ("on", "auto"):
        assert _match_key(Matchmaker(list(ads), indexing=mode).match(req)) == _match_key(
            naive
        )


def test_gangmatch_indexed_equals_naive():
    plat = make_platform(15, seed=3)
    ads = machine_ads(plat, range(plat.n_hosts))
    spec = ResourceSpecification(
        heuristic="mcp",
        size=6,
        min_size=4,
        clock_min_mhz=2000.0,
        clock_max_mhz=4000.0,
        connectivity="loose",
        threshold=0.001,
        dag_name="montage",
    )
    request = parse_classad(spec.to_classad())
    naive = Matchmaker(list(ads), indexing="off").gangmatch(request)
    for mode in ("on", "auto"):
        gang = Matchmaker(list(ads), indexing=mode).gangmatch(request)
        assert (gang is None) == (naive is None)
        if gang is not None:
            assert [id(m) for m in gang.machines] == [id(m) for m in naive.machines]
            assert gang.ranks == naive.ranks


def test_match_after_advertise_uses_fresh_index():
    plat = make_platform(5)
    ads = machine_ads(plat, range(plat.n_hosts))
    req = parse_classad("[ Requirements = TARGET.Clock >= 0; Rank = 0 ]")
    mm = Matchmaker(list(ads[:-1]), indexing="on")
    before = len(mm.match(req))
    mm.advertise(ads[-1])
    assert len(mm.match(req)) == before + 1


def _vg_key(vg):
    if vg is None:
        return None
    return [h.tolist() for h in vg.hosts_per_aggregate]


VGDL_SPECS = [
    "vg = LooseBagOf(nodes) [2:8] [rank = Nodes] { nodes = [ (Clock >= 2000) ] }",
    "vg = TightBagOf(nodes) [2:8] { nodes = [ (Clock >= 2000) && (Memory >= 1024) ] }",
    "vg = ClusterOf(nodes) [2:4] { nodes = [ (OpSys == LINUX) ] }",
    "vg = LooseBagOf(nodes) [1:4] { nodes = [ (Clock >= 9000) ] }",  # infeasible
]


@pytest.mark.parametrize("text", VGDL_SPECS)
def test_vges_indexed_equals_naive(text):
    plat = make_platform(15, seed=5)
    spec = parse_vgdl(text)
    naive_engine = VgES(plat, indexing="off")
    naive = naive_engine.find_and_bind(spec)
    for mode in ("on", "auto"):
        engine = VgES(plat, indexing=mode)
        for agg in spec.aggregates:
            np.testing.assert_array_equal(
                engine.matching_clusters(agg.constraint),
                naive_engine.matching_clusters(agg.constraint),
            )
        assert _vg_key(engine.find_and_bind(spec)) == _vg_key(naive)


def test_sword_indexed_equals_naive():
    plat = make_platform(15, seed=6)
    spec = ResourceSpecification(
        heuristic="mcp",
        size=6,
        min_size=4,
        clock_min_mhz=2000.0,
        clock_max_mhz=4000.0,
        connectivity="loose",
        threshold=0.001,
        dag_name="montage",
    )
    xml = spec.to_sword_xml()
    naive = SwordEngine(plat, indexing="off").query(xml)
    for mode in ("on", "auto"):
        result = SwordEngine(plat, indexing=mode).query(xml)
        assert (result is None) == (naive is None)
        if result is not None:
            assert result.penalty == naive.penalty
            assert set(result.hosts) == set(naive.hosts)
            for name in result.hosts:
                np.testing.assert_array_equal(result.hosts[name], naive.hosts[name])


# ----------------------------------------------------------------------
# Hypothesis: random platforms + specs in all three languages
# ----------------------------------------------------------------------
_spec_strategy = st.builds(
    ResourceSpecification,
    heuristic=st.just("mcp"),
    size=st.integers(min_value=2, max_value=12),
    min_size=st.just(1),
    clock_min_mhz=st.sampled_from([1000.0, 2000.0, 2600.0, 3400.0, 9000.0]),
    clock_max_mhz=st.just(10_000.0),
    connectivity=st.sampled_from(["loose", "tight"]),
    threshold=st.just(0.001),
    dag_name=st.just("montage"),
)


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(seed=st.integers(min_value=0, max_value=10_000), spec=_spec_strategy)
def test_property_indexed_equals_naive_in_all_three_languages(seed, spec):
    plat = make_platform(n_clusters=8, hosts_per_cluster=4, seed=seed)

    # ClassAd gangmatch.
    ads = machine_ads(plat, range(plat.n_hosts))
    request = parse_classad(spec.to_classad())
    g_on = Matchmaker(list(ads), indexing="on").gangmatch(request)
    g_off = Matchmaker(list(ads), indexing="off").gangmatch(request)
    assert (g_on is None) == (g_off is None)
    if g_on is not None:
        assert [id(m) for m in g_on.machines] == [id(m) for m in g_off.machines]

    # vgDL.
    v_on = VgES(plat, indexing="on").find_and_bind(spec.to_vgdl())
    v_off = VgES(plat, indexing="off").find_and_bind(spec.to_vgdl())
    assert _vg_key(v_on) == _vg_key(v_off)

    # SWORD.
    s_on = SwordEngine(plat, indexing="on").query(spec.to_sword_xml())
    s_off = SwordEngine(plat, indexing="off").query(spec.to_sword_xml())
    assert (s_on is None) == (s_off is None)
    if s_on is not None:
        assert s_on.penalty == s_off.penalty
        for name in s_on.hosts:
            np.testing.assert_array_equal(s_on.hosts[name], s_off.hosts[name])


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(seed=st.integers(min_value=0, max_value=1000))
def test_property_match_equal_on_churned_platform(seed):
    """Indexed vs naive bilateral match over the *free* subset of a churned
    platform — unavailable hosts excluded from the advertised population."""
    plat = make_platform(n_clusters=8, hosts_per_cluster=4, seed=seed)
    churn = ResourceChurn.from_config(
        plat,
        ChurnConfig(fail_rate=0.05, competitor_rate=0.05, utilization=0.2,
                    seed=seed),
        Binder(plat),
    )
    churn.advance(200.0)
    banned = churn.unavailable() | churn.binder.bound_hosts
    free = [h for h in range(plat.n_hosts) if h not in banned]
    ads = machine_ads(plat, free)
    req = parse_classad(
        '[ Requirements = TARGET.Clock >= 2000 && TARGET.OpSys == "LINUX";'
        " Rank = TARGET.Clock ]"
    )
    assert _match_key(Matchmaker(list(ads), indexing="on").match(req)) == _match_key(
        Matchmaker(list(ads), indexing="off").match(req)
    )


# ----------------------------------------------------------------------
# Seeded pipeline replay: the degradation ladder end to end
# ----------------------------------------------------------------------
def _pipeline_outcome(indexing: str, churn_config: ChurnConfig) -> dict:
    plat = make_platform(n_clusters=20, hosts_per_cluster=10, seed=8)
    dag = montage_dag(montage_level_counts(10), ccr=0.01)
    spec = ResourceSpecification(
        heuristic="mcp",
        size=16,
        min_size=12,
        clock_min_mhz=2000.0,
        clock_max_mhz=4000.0,
        connectivity="loose",
        threshold=0.001,
        dag_name="montage",
    )
    churn = ResourceChurn.from_config(plat, churn_config, Binder(plat))
    pipeline = SelectionPipeline(plat, churn, PipelineConfig(indexing=indexing))
    return pipeline.run(dag, spec).to_dict()


def test_pipeline_replay_identical_quiet():
    quiet = ChurnConfig()
    assert _pipeline_outcome("on", quiet) == _pipeline_outcome("off", quiet)


def test_pipeline_replay_identical_under_churn_and_ladder():
    """Churn forces refusals/retries through the degradation ladder; the
    outcome (attempt sequence, hosts, counters, timings) must not depend on
    the indexing mode."""
    churned = ChurnConfig(
        fail_rate=0.002, competitor_rate=0.01, utilization=0.25, seed=9
    )
    on = _pipeline_outcome("on", churned)
    off = _pipeline_outcome("off", churned)
    auto = _pipeline_outcome("auto", churned)
    assert on == off == auto
