"""Fault-injection suite: proves every recovery path of the fault-tolerant
parallel engine (:mod:`repro.parallel` + :mod:`repro.faults`).

The acceptance bar from the issue:

* retry-then-succeed gives **bit-identical** tables to a clean run for
  any ``jobs`` value (~10% injected raises plus a worker hard-kill);
* a worker hard-kill mid-sweep is recovered, and a *poison* cell that
  kills its worker on every attempt is quarantined as a
  :class:`CellFailure`;
* an interrupted sweep resumes from the cache recomputing only the
  unfinished cells (asserted via cache hit/miss counters).

Everything here is deterministic: which cells fault, and how, is a pure
function of the injector seed and the cell digest.
"""

from __future__ import annotations

import pytest

import repro.observe as observe
from repro.faults import FaultInjector, InjectedFault, from_env, parse_spec
from repro.parallel import (
    MISS,
    CellFailure,
    FaultPolicy,
    ResultCache,
    SweepError,
    cell_digest,
    map_cells,
    rng_for_cell,
)

CELLS = list(range(10))

#: Fast policies for tests: no real backoff sleeps.
RETRY = FaultPolicy(on_error="retry", max_retries=3, max_kills=2, backoff_base_s=0.0)
SKIP = FaultPolicy(on_error="skip", max_retries=1, backoff_base_s=0.0)


def _cell_fn(cell):
    # Module-level and seed-derived so (a) the pool can pickle it and
    # (b) "bit-identical" is a meaningful claim about real random streams.
    rng = rng_for_cell(0, "faults-suite", cell)
    return {"cell": cell, "draw": float(rng.uniform())}


def _doomed(injector: FaultInjector, cells, kind: str) -> list:
    """Which of ``cells`` the injector will hit with ``kind`` on attempt 1."""
    return [c for c in cells if injector.decide(cell_digest(c), 1) == kind]


def _find_seed(raise_p=0.0, kill_p=0.0, hang_p=0.0, *, want_raise=0, want_kill=0, want_hang=0):
    """A seed under which the spec dooms exactly the wanted cell counts."""
    for seed in range(500):
        inj = FaultInjector(raise_p=raise_p, kill_p=kill_p, hang_p=hang_p, seed=seed)
        if (
            len(_doomed(inj, CELLS, "raise")) == want_raise
            and len(_doomed(inj, CELLS, "kill")) == want_kill
            and len(_doomed(inj, CELLS, "hang")) == want_hang
        ):
            return inj
    raise AssertionError("no suitable injector seed found")


def _run(jobs, policy, injector, cells=CELLS):
    """map_cells under a private registry; returns (results, counters)."""
    registry = observe.MetricsRegistry()
    with observe.use_registry(registry):
        out = map_cells(_cell_fn, cells, jobs=jobs, policy=policy, injector=injector)
    return out, registry.snapshot()["counters"]


@pytest.fixture(scope="module")
def clean():
    return [_cell_fn(c) for c in CELLS]


# ----------------------------------------------------------------------
# Injector unit behaviour
# ----------------------------------------------------------------------
def test_decide_is_deterministic_and_attempt_gated():
    inj = FaultInjector(raise_p=0.5, seed=1)
    d = cell_digest("x")
    assert inj.decide(d, 1) == inj.decide(d, 1)
    # attempts=1 (default): the fault is transient — attempt 2 is clean.
    assert inj.decide(d, 2) is None
    assert inj.permanent().decide(d, 99) == inj.decide(d, 1)


def test_draw_is_uniform_slice_exclusive():
    # Raising kill_p must never change which cells raise: the kinds are
    # slices of one per-cell draw.
    a = FaultInjector(raise_p=0.2, seed=4)
    b = FaultInjector(raise_p=0.2, kill_p=0.3, seed=4)
    assert _doomed(a, CELLS, "raise") == _doomed(b, CELLS, "raise")


def test_fire_raises_injected_fault():
    inj = FaultInjector(raise_p=1.0, seed=0)
    with pytest.raises(InjectedFault):
        inj.fire(cell_digest("anything"), 1)
    inj.fire(cell_digest("anything"), 2)  # past the attempt gate: no-op


def test_parse_spec_roundtrip_and_errors(monkeypatch):
    inj = parse_spec("raise=0.1, kill=0.05, seed=7, attempts=0, hang_s=12")
    assert inj == FaultInjector(raise_p=0.1, kill_p=0.05, seed=7, attempts=0, hang_s=12.0)
    with pytest.raises(ValueError):
        parse_spec("explode=1.0")
    with pytest.raises(ValueError):
        parse_spec("raise=lots")
    with pytest.raises(ValueError):
        FaultInjector(raise_p=0.7, kill_p=0.7)  # probabilities sum > 1
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    assert from_env() is None
    monkeypatch.setenv("REPRO_FAULTS", "raise=0.25,seed=3")
    assert from_env() == FaultInjector(raise_p=0.25, seed=3)


def test_env_injector_reaches_map_cells(monkeypatch):
    # REPRO_FAULTS is the chaos knob for real runs: with on_error="raise"
    # a doomed cell aborts the sweep.
    inj = _find_seed(raise_p=0.3, want_raise=3)
    monkeypatch.setenv("REPRO_FAULTS", f"raise=0.3,seed={inj.seed}")
    with pytest.raises(InjectedFault):
        map_cells(_cell_fn, CELLS, jobs=1, policy=FaultPolicy(on_error="raise"))


# ----------------------------------------------------------------------
# Service-level injector (repro.service chaos harness)
# ----------------------------------------------------------------------
from repro.faults import (  # noqa: E402
    ServiceFaultInjector,
    parse_service_spec,
    service_from_env,
)


def test_service_decisions_are_pure_functions_of_seed_and_key():
    inj = ServiceFaultInjector(
        tenant_crash_p=0.5, backend_error_p=0.3, bind_stall_p=0.4, seed=7
    )
    # Same key, same answer — regardless of virtual "now".
    assert inj.tenant_crash(1, 0, "select", 0.0) == inj.tenant_crash(
        1, 0, "select", 123.0
    )
    assert inj.backend_fault("vges", 1, 0, 0, 0, 5.0) == inj.backend_fault(
        "vges", 1, 0, 0, 0, 99.0
    )
    assert inj.bind_stall(1, 0, 0, 0, 5.0) == inj.bind_stall(1, 0, 0, 0, 99.0)
    # Different attempts draw independently.
    draws = {inj.backend_fault("vges", 1, 0, 0, a, 0.0) for a in range(20)}
    assert len(draws) > 1


def test_service_targeted_crash_and_stage_gate():
    inj = ServiceFaultInjector(crash_tenant=3, crash_stage="bound")
    assert inj.tenant_crash(3, 0, "bound", 0.0)
    assert not inj.tenant_crash(3, 0, "admit", 0.0)  # wrong stage
    assert not inj.tenant_crash(2, 0, "bound", 0.0)  # wrong tenant


def test_service_until_window_expires_faults():
    inj = ServiceFaultInjector(
        backend_error_p=1.0, fault_backend="vges", until_s=40.0
    )
    assert inj.backend_fault("vges", 0, 0, 0, 0, 39.9) == "error"
    assert inj.backend_fault("vges", 0, 0, 0, 0, 40.0) is None  # window over
    assert inj.backend_fault("classad", 0, 0, 0, 0, 0.0) is None  # other backend


def test_service_injector_validation():
    with pytest.raises(ValueError):
        ServiceFaultInjector(tenant_crash_p=1.5)
    with pytest.raises(ValueError):
        ServiceFaultInjector(backend_error_p=0.7, backend_hang_p=0.7)  # sum > 1
    with pytest.raises(ValueError):
        ServiceFaultInjector(crash_stage="binding")  # not a known stage
    with pytest.raises(ValueError):
        ServiceFaultInjector(kill_after=-1)


def test_parse_service_spec_roundtrip_and_errors(monkeypatch):
    inj = parse_service_spec(
        "backend_error=0.2, fault_backend=vges, seed=5, until=40, kill_after=3"
    )
    assert inj == ServiceFaultInjector(
        backend_error_p=0.2, fault_backend="vges", seed=5, until_s=40.0, kill_after=3
    )
    # The satellite guarantee: a typo'd key gets one line naming the
    # bad key and the accepted set.
    with pytest.raises(ValueError, match="'fial'.*accepted keys"):
        parse_service_spec("fial=0.1")
    with pytest.raises(ValueError, match="bad value"):
        parse_service_spec("backend_error=lots")
    monkeypatch.delenv("REPRO_SERVICE_FAULTS", raising=False)
    assert service_from_env() is None
    monkeypatch.setenv("REPRO_SERVICE_FAULTS", "tenant_crash=0.1,seed=2")
    assert service_from_env() == ServiceFaultInjector(tenant_crash_p=0.1, seed=2)


# ----------------------------------------------------------------------
# (a) retry-then-succeed is bit-identical to a clean run, any jobs value
# ----------------------------------------------------------------------
def test_retry_recovers_injected_raises_serial(clean):
    inj = _find_seed(raise_p=0.3, want_raise=3)
    out, counters = _run(1, RETRY, inj)
    assert out == clean
    assert counters["parallel.retries"] == 3
    assert "parallel.failures" not in counters


def test_retry_raises_bit_identical_any_jobs(clean):
    inj = _find_seed(raise_p=0.3, want_raise=3)
    for jobs in (2, 4):
        out, counters = _run(jobs, RETRY, inj)
        assert out == clean, f"jobs={jobs}"
        assert counters["parallel.retries"] == 3


def test_retry_raises_plus_one_hard_kill_bit_identical(clean):
    # The acceptance scenario: ~10% of cells raise once, one cell
    # hard-kills its worker once; on_error="retry" must still produce a
    # bit-identical table, for any worker count.
    inj = _find_seed(raise_p=0.1, kill_p=0.04, want_raise=1, want_kill=1)
    for jobs in (2, 3):
        out, counters = _run(jobs, RETRY, inj)
        assert out == clean, f"jobs={jobs}"
        assert counters["parallel.pool_restarts"] >= 1
        assert counters["parallel.retries"] >= 2  # the raiser and the killer
        assert "parallel.failures" not in counters


# ----------------------------------------------------------------------
# (b) hard-kill recovery and poison-cell quarantine
# ----------------------------------------------------------------------
def test_worker_hard_kill_recovered(clean):
    inj = _find_seed(kill_p=0.04, want_kill=1)
    out, counters = _run(2, RETRY, inj)
    assert out == clean
    assert counters["parallel.pool_restarts"] >= 1


def test_poison_cell_quarantined_others_survive(clean):
    inj = _find_seed(kill_p=0.04, want_kill=1).permanent()
    (poison,) = _doomed(inj, CELLS, "kill")
    out, counters = _run(2, RETRY, inj)
    failures = [r for r in out if isinstance(r, CellFailure)]
    assert len(failures) == 1
    failure = failures[0]
    assert failure.cell == poison
    assert failure.cause == "worker-lost"
    assert failure.attempts == RETRY.max_kills + 1
    assert out.index(failure) == CELLS.index(poison)  # order preserved
    assert [r for r in out if r is not failure] == [
        r for r in clean if r["cell"] != poison
    ]
    assert counters["parallel.failures"] == 1
    assert counters["parallel.pool_restarts"] >= RETRY.max_kills + 1


def test_hang_recovered_by_cell_timeout(clean):
    inj = _find_seed(hang_p=0.04, want_hang=1)
    policy = FaultPolicy(
        on_error="retry", max_retries=2, cell_timeout=0.75, backoff_base_s=0.0
    )
    out, counters = _run(2, policy, inj)
    assert out == clean
    assert counters["parallel.pool_restarts"] >= 1
    assert counters["parallel.retries"] >= 1


def test_permanent_hang_becomes_timeout_failure_under_skip(clean):
    inj = _find_seed(hang_p=0.04, want_hang=1).permanent()
    (hung,) = _doomed(inj, CELLS, "hang")
    policy = FaultPolicy(
        on_error="skip", max_retries=1, cell_timeout=0.6, backoff_base_s=0.0
    )
    out, counters = _run(2, policy, inj)
    failures = [r for r in out if isinstance(r, CellFailure)]
    assert len(failures) == 1
    assert failures[0].cell == hung
    assert failures[0].cause == "timeout"
    assert counters["parallel.failures"] == 1


# ----------------------------------------------------------------------
# skip / retry / raise semantics with plain exceptions
# ----------------------------------------------------------------------
def _fails_on_two(cell):
    if cell == 2:
        raise ValueError("cell 2 always fails")
    return {"cell": cell}


def test_skip_mode_returns_structured_failure():
    out = map_cells(_fails_on_two, [1, 2, 3], jobs=1, policy=SKIP, injector=None)
    assert out[0] == {"cell": 1} and out[2] == {"cell": 3}
    failure = out[1]
    assert isinstance(failure, CellFailure)
    assert failure.cause == "exception"
    assert failure.attempts == SKIP.max_retries + 1
    assert "ValueError" in failure.error and "ValueError" in failure.traceback


def test_retry_mode_exhaustion_raises_sweep_error():
    with pytest.raises(SweepError) as excinfo:
        map_cells(_fails_on_two, [1, 2, 3], jobs=1, policy=RETRY, injector=None)
    assert excinfo.value.failure.cell == 2
    assert excinfo.value.failure.attempts == RETRY.max_retries + 1


def test_raise_mode_fails_fast_with_original_exception():
    registry = observe.MetricsRegistry()
    with observe.use_registry(registry):
        with pytest.raises(ValueError):
            map_cells(
                _fails_on_two,
                [1, 2, 3],
                jobs=1,
                policy=FaultPolicy(on_error="raise"),
                injector=None,
            )
    assert "parallel.retries" not in registry.snapshot()["counters"]


def test_raise_mode_fails_fast_in_pool():
    with pytest.raises((ValueError, SweepError)):
        map_cells(
            _fails_on_two,
            [1, 2, 3, 4],
            jobs=2,
            policy=FaultPolicy(on_error="raise"),
            injector=None,
        )


# ----------------------------------------------------------------------
# (c) interrupt-then-resume: only unfinished cells are recomputed
# ----------------------------------------------------------------------
def _interrupt_at_six(cell):
    if cell == 6:
        raise KeyboardInterrupt  # simulated Ctrl-C mid-sweep
    return _cell_fn(cell)


def test_interrupted_sweep_resumes_from_cache(tmp_path, clean):
    cache = ResultCache(tmp_path / "cache")
    with pytest.raises(KeyboardInterrupt):
        map_cells(
            _interrupt_at_six, CELLS, jobs=1, cache=cache, namespace="sweep",
            policy=RETRY, injector=None,
        )
    # Serial order: cells 0..5 completed and were checkpointed before the
    # interrupt; 6..9 were never run.
    for cell in range(6):
        assert cache.get("sweep", (None, cell)) == clean[cell]
    assert cache.get("sweep", (None, 6)) is MISS

    registry = observe.MetricsRegistry()
    with observe.use_registry(registry):
        out = map_cells(
            _cell_fn, CELLS, jobs=1, cache=cache, namespace="sweep",
            policy=RETRY, injector=None,
        )
    counters = registry.snapshot()["counters"]
    assert out == clean
    # The whole point of incremental checkpointing: the resume recomputes
    # only the unfinished cells.
    assert counters["cache.hits"] == 6
    assert counters["cache.misses"] == 4
    assert counters["parallel.cells_computed"] == 4
    assert counters["parallel.cells_checkpointed"] == 4


def test_faulted_parallel_sweep_checkpoints_into_cache(tmp_path, clean):
    # Even with raises + a worker kill, every completed cell lands in the
    # cache, so a follow-up run is pure hits.
    inj = _find_seed(raise_p=0.1, kill_p=0.04, want_raise=1, want_kill=1)
    cache = ResultCache(tmp_path / "cache")
    registry = observe.MetricsRegistry()
    with observe.use_registry(registry):
        out = map_cells(
            _cell_fn, CELLS, jobs=2, cache=cache, namespace="sweep",
            policy=RETRY, injector=inj,
        )
    assert out == clean
    assert registry.snapshot()["counters"]["parallel.cells_checkpointed"] == len(CELLS)

    registry = observe.MetricsRegistry()
    with observe.use_registry(registry):
        warm = map_cells(
            _cell_fn, CELLS, jobs=1, cache=cache, namespace="sweep",
            policy=RETRY, injector=None,
        )
    counters = registry.snapshot()["counters"]
    assert warm == clean
    assert counters["cache.hits"] == len(CELLS)
    assert "cache.misses" not in counters


def test_failed_cells_are_never_cached(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    out = map_cells(
        _fails_on_two, [1, 2, 3], jobs=1, cache=cache, namespace="ns",
        policy=SKIP, injector=None,
    )
    assert isinstance(out[1], CellFailure)
    assert cache.get("ns", (None, 2)) is MISS
    assert cache.get("ns", (None, 1)) == {"cell": 1}
