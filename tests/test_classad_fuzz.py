"""Robustness tests for the ClassAd front end: arbitrary input must either
parse or raise :class:`ClassAdParseError` — never IndexError, KeyError or
RecursionError."""

import pytest

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.selection.classad import (
    ClassAdParseError,
    LexError,
    ParseError,
    parse_classad,
    parse_expression,
)
from repro.selection.classad.lexer import tokenize

_VALID_AD = (
    '[ Type = "Request"; Count = 16; Clock = 2100.0;'
    ' Requirements = other.Clock >= 2100 && other.OpSys == "LINUX";'
    " Rank = other.Clock ]"
)


# ----------------------------------------------------------------------
# Deterministic regressions: inputs that used to escape as IndexError /
# RecursionError from the recursive-descent parser.
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "text",
    [
        "",  # empty input
        "(",  # truncated group
        "(" * 10_000,  # deep nesting (used to be RecursionError)
        "-" * 10_000 + "1",  # deep unary chain
        "[ Foo = 1",  # truncated record
        "[ Foo = ",  # truncated binding
        "1 +",  # dangling operator
        '"unterminated',  # unterminated string
        "/* open comment",  # unterminated comment
        "a =? b",  # two chars of a three-char operator
        "§",  # character outside the alphabet
        "x.y.z",  # over-scoped reference
        "{1, 2,",  # truncated list
        "[ Foo = 1; Bar ]",  # missing '='
        "f(1, 2",  # truncated call
        "a ? b",  # ternary missing ':'
    ],
)
def test_malformed_input_raises_structured_error(text):
    for fn in (parse_expression, parse_classad):
        with pytest.raises(ClassAdParseError):
            fn(text)


def test_error_carries_location_and_context():
    with pytest.raises(ParseError) as exc_info:
        parse_classad("[\n  Foo = 1;\n  Bar == 2;\n]")
    err = exc_info.value
    assert err.line == 3
    assert err.column == 7
    assert "Bar == 2" in err.context
    assert "line 3" in str(err) and "column 7" in str(err)


def test_lex_error_carries_location():
    with pytest.raises(LexError) as exc_info:
        parse_expression('Clock >= "oops')
    err = exc_info.value
    assert err.line == 1
    assert err.column == 10
    assert isinstance(err, ClassAdParseError)


def test_error_hierarchy():
    # One except clause covers both phases, and plain ValueError still works
    # for legacy callers.
    assert issubclass(LexError, ClassAdParseError)
    assert issubclass(ParseError, ClassAdParseError)
    assert issubclass(ClassAdParseError, ValueError)


def test_tokenize_never_loses_eof():
    # The parser relies on the trailing EOF token being sticky: repeatedly
    # asking for tokens past the end must not raise IndexError.
    from repro.selection.classad.parser import _Parser

    parser = _Parser(tokenize("1 2 3"))
    for _ in range(20):
        tok = parser.next()
    assert tok.kind == "EOF"


def test_valid_ad_still_parses():
    ad = parse_classad(_VALID_AD)
    assert "Requirements" in ad and "Count" in ad


# ----------------------------------------------------------------------
# Fuzz: random mutations of a valid ClassAd.
# ----------------------------------------------------------------------
_REPLACEMENTS = ["", "(", ")", "[", "]", '"', ";", "=", "&&", "?", ".", "§", "=?", "/*"]

_mutations = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=len(_VALID_AD) - 1),
        st.sampled_from(_REPLACEMENTS),
    ),
    min_size=1,
    max_size=8,
)


def _mutate(text: str, edits) -> str:
    out = text
    for pos, repl in edits:
        pos = min(pos, len(out) - 1) if out else 0
        out = out[:pos] + repl + out[pos + 1 :]
    return out


@pytest.mark.slow
@settings(max_examples=500, deadline=None)
@given(_mutations)
def test_fuzz_mutated_classads_parse_or_raise(edits):
    """Any byte-level corruption of a valid ad either parses or raises
    ClassAdParseError — no other exception type escapes."""
    text = _mutate(_VALID_AD, edits)
    try:
        parse_classad(text)
    except ClassAdParseError:
        pass


@pytest.mark.slow
@settings(max_examples=500, deadline=None)
@given(st.text(alphabet='abc01 ._;,=?!&|<>+-*/%(){}[]"\'\n§', max_size=80))
def test_fuzz_arbitrary_text_parse_or_raise(text):
    """Fully arbitrary text over the token alphabet never escapes the
    structured-error contract."""
    for fn in (parse_expression, parse_classad):
        try:
            fn(text)
        except ClassAdParseError:
            pass
