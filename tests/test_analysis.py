"""Tests for the spec static analyzer: diagnostics, intervals, checkers."""

import json

import pytest

from repro.analysis import (
    DEFAULT_VOCABULARY,
    DIAGNOSTIC_CODES,
    Diagnostic,
    DiagnosticReport,
    Interval,
    Span,
    analyze_classad_text,
    analyze_constraint,
    analyze_specification,
    analyze_sword_text,
    analyze_vgdl_text,
    detect_language,
    infer_type,
    lint_text,
)
from repro.selection.classad.parser import parse_expression


def _codes(report):
    return [d.code for d in report]


def _errors(report):
    return [d.code for d in report.errors()]


# ----------------------------------------------------------------------
# Diagnostic / Span / DiagnosticReport plumbing.
# ----------------------------------------------------------------------
class TestDiagnostics:
    def test_all_codes_registered_with_description(self):
        for code, description in DIAGNOSTIC_CODES.items():
            assert code.startswith("SPEC")
            assert description

    def test_unknown_code_rejected(self):
        with pytest.raises(ValueError):
            Diagnostic(code="SPEC999", severity="error", message="x", lang="vgdl")

    def test_unknown_severity_rejected(self):
        with pytest.raises(ValueError):
            Diagnostic(code="SPEC101", severity="fatal", message="x", lang="vgdl")

    def test_format_includes_code_severity_lang_and_span(self):
        span = Span.from_pos("ab\ncde", 4)
        d = Diagnostic(
            code="SPEC101", severity="error", message="boom", lang="classad", span=span
        )
        text = d.format()
        assert "SPEC101" in text and "error" in text and "classad" in text
        assert "line 2" in text and "column 2" in text and "boom" in text

    def test_span_from_pos_line_column(self):
        span = Span.from_pos("xy\nabcd", 5)
        assert (span.line, span.column) == (2, 3)
        assert span.context == "abcd"

    def test_report_severity_queries_and_render(self):
        r = DiagnosticReport()
        assert not r.has_errors and r.render() == "clean"
        r.add("SPEC102", "warning", "w", "vgdl")
        assert not r.has_errors
        r.add("SPEC101", "error", "e", "vgdl")
        assert r.has_errors
        assert len(r.errors()) == 1 and len(r.warnings()) == 1
        assert "SPEC101" in r.render() and "SPEC102" in r.render()
        assert r.codes() == ["SPEC102", "SPEC101"]

    def test_report_to_json_round_trips(self):
        r = DiagnosticReport()
        r.add("SPEC104", "warning", "m", "sword")
        data = json.loads(r.to_json())
        assert data[0]["code"] == "SPEC104" and data[0]["severity"] == "warning"


# ----------------------------------------------------------------------
# Interval arithmetic.
# ----------------------------------------------------------------------
class TestInterval:
    def test_from_comparison_directions(self):
        assert Interval.from_comparison(">=", 2.0) == Interval(lo=2.0)
        assert Interval.from_comparison("<", 5.0) == Interval(hi=5.0, hi_open=True)
        eq = Interval.from_comparison("==", 3.0)
        assert (eq.lo, eq.hi) == (3.0, 3.0) and not eq.is_empty

    def test_boundary_equality_is_satisfiable(self):
        # [2, inf) ∩ (-inf, 2] = {2} — non-empty.
        merged = Interval.from_comparison(">=", 2.0).intersect(
            Interval.from_comparison("<=", 2.0)
        )
        assert not merged.is_empty
        assert (merged.lo, merged.hi) == (2.0, 2.0)

    def test_open_endpoint_at_same_value_is_empty(self):
        merged = Interval.from_comparison(">", 2.0).intersect(
            Interval.from_comparison("<=", 2.0)
        )
        assert merged.is_empty

    def test_disjoint_is_empty(self):
        merged = Interval.from_comparison(">=", 3.0).intersect(
            Interval.from_comparison("<=", 2.0)
        )
        assert merged.is_empty


# ----------------------------------------------------------------------
# Constraint analysis over parsed expressions (one class per code).
# ----------------------------------------------------------------------
def _analyze(src, **kw):
    kw.setdefault("lang", "classad")
    return analyze_constraint(parse_expression(src), **kw)


class TestConstraintCodes:
    def test_spec101_contradictory_range(self):
        r = _analyze("Clock >= 3000 && Clock <= 2000")
        assert _errors(r) == ["SPEC101"]

    def test_spec101_boundary_equality_is_clean(self):
        r = _analyze("Clock >= 2000 && Clock <= 2000")
        assert _codes(r) == []

    def test_spec101_scoped_attrs_tracked_separately(self):
        # cpu.Clock and gpu.Clock are different attributes.
        r = _analyze("cpu.Clock >= 3000 && gpu.Clock <= 2000")
        assert _codes(r) == []

    def test_spec101_duplicate_string_equality(self):
        r = _analyze('Arch == "x86" && Arch == "sparc"')
        assert _errors(r) == ["SPEC101"]

    def test_spec102_dead_clause_subsumed_range(self):
        r = _analyze("Clock >= 3000 && Clock >= 2000")
        assert _codes(r) == ["SPEC102"]
        assert not r.has_errors

    def test_spec102_nonnegative_domain_makes_zero_bound_dead(self):
        r = _analyze("Clock >= 0")
        assert _codes(r) == ["SPEC102"]

    def test_spec102_constant_true_conjunct(self):
        r = _analyze("true && Clock >= 2000")
        assert _codes(r) == ["SPEC102"]

    def test_spec103_type_mismatch_string_vs_number(self):
        r = _analyze('Arch >= 3')
        assert _errors(r) == ["SPEC103"]

    def test_spec104_unknown_attribute_warning(self):
        r = _analyze("FrobnicationLevel >= 3")
        assert _codes(r) == ["SPEC104"]
        assert not r.has_errors

    def test_spec105_constant_false_conjunct(self):
        r = _analyze("false && Clock >= 2000")
        assert _errors(r) == ["SPEC105"]

    def test_spec106_dead_or_branch(self):
        r = _analyze("(Clock >= 3000 && Clock <= 2000) || Memory >= 512")
        assert "SPEC106" in _codes(r)
        assert not r.has_errors

    def test_spec105_all_or_branches_dead(self):
        r = _analyze("(Clock >= 3000 && Clock <= 2000) || false")
        assert "SPEC105" in _errors(r)

    def test_clean_typical_constraint(self):
        r = _analyze(
            'Type == "Machine" && OpSys == "LINUX" && Clock >= 2100 && Memory >= 256'
        )
        assert _codes(r) == []


class TestInferType:
    def test_known_attribute_types(self):
        assert infer_type(parse_expression("Clock"), DEFAULT_VOCABULARY) == "number"
        assert infer_type(parse_expression("Arch"), DEFAULT_VOCABULARY) == "string"

    def test_literals_and_comparison(self):
        assert infer_type(parse_expression("3.5"), DEFAULT_VOCABULARY) == "number"
        assert infer_type(parse_expression('"x"'), DEFAULT_VOCABULARY) == "string"
        assert infer_type(parse_expression("Clock >= 2"), DEFAULT_VOCABULARY) == "bool"


# ----------------------------------------------------------------------
# Language front ends.
# ----------------------------------------------------------------------
class TestClassadChecker:
    BAD_PORT = """\
[
  Type = "Job";
  Ports = {
    [
      Label = cpu;
      Count = 4;
      Constraint = cpu.Clock >= 3000 && cpu.Clock <= 2000;
      Rank = cpu.Clock
    ]
  }
]
"""

    def test_contradiction_reported_with_span(self):
        r = analyze_classad_text(self.BAD_PORT)
        errs = r.errors()
        assert [d.code for d in errs] == ["SPEC101"]
        assert errs[0].span is not None and errs[0].span.line == 7

    def test_parse_error_is_spec001(self):
        r = analyze_classad_text("[ Type = ; ]")
        assert _errors(r) == ["SPEC001"]

    def test_nonpositive_count_is_spec110(self):
        text = self.BAD_PORT.replace("Count = 4", "Count = 0").replace(
            "cpu.Clock >= 3000 && ", ""
        ).replace("cpu.Clock <= 2000", "cpu.Clock >= 2000")
        r = analyze_classad_text(text)
        assert "SPEC110" in _errors(r)

    def test_string_rank_is_spec120(self):
        text = self.BAD_PORT.replace("cpu.Clock >= 3000 && cpu.Clock <= 2000",
                                     "cpu.Clock >= 2000").replace(
            "Rank = cpu.Clock", 'Rank = "fastest"'
        )
        r = analyze_classad_text(text)
        assert "SPEC120" in _codes(r)


class TestVgdlChecker:
    def test_bare_string_comparison_is_spec104_error(self):
        # vgDL rewrites unknown bare identifiers to string literals, so
        # `Speed >= 3` silently becomes `"Speed" >= 3` — flag it loudly.
        text = "VG =\nLooseBagOf(nodes) [4:8]\n{\n  nodes = [ (Speed >= 3) ]\n}"
        r = analyze_vgdl_text(text)
        assert _errors(r) == ["SPEC104"]
        [d] = [d for d in r if d.code == "SPEC104"]
        assert "string" in d.message.lower()
        assert d.span is not None and d.span.line == 4

    def test_parse_error_is_spec001(self):
        r = analyze_vgdl_text("VG = LooseBagOf(")
        assert _errors(r) == ["SPEC001"]

    def test_contradiction_inside_aggregate(self):
        text = (
            "VG =\nLooseBagOf(nodes) [4:8]\n"
            "{\n  nodes = [ (Clock >= 3.0) && (Clock <= 2.0) ]\n}"
        )
        r = analyze_vgdl_text(text)
        assert "SPEC101" in _errors(r)


class TestSwordChecker:
    def test_parse_error_is_spec001(self):
        r = analyze_sword_text("<request><unclosed></request")
        assert _errors(r) == ["SPEC001"]

    def test_contradictory_duplicate_requirements(self):
        text = """<request>
  <group>
    <name>g</name>
    <num_machines>4</num_machines>
    <clock>3000.0, 3000.0, MAX, MAX, 0.01</clock>
    <clock>0.0, 0.0, 2000.0, 2000.0, 0.01</clock>
  </group>
</request>"""
        r = analyze_sword_text(text)
        assert _errors(r) == ["SPEC131"]

    def test_latency_below_physical_floor(self):
        text = """<request>
  <group>
    <name>g</name>
    <num_machines>2</num_machines>
    <latency>0.0, 0.0, 0.1, 0.1, 0.1</latency>
  </group>
</request>"""
        r = analyze_sword_text(text)
        assert _errors(r) == ["SPEC133"]

    def test_nonpositive_budget_is_spec130(self):
        text = """<request>
  <dist_query_budget>0</dist_query_budget>
  <group>
    <name>g</name>
    <num_machines>2</num_machines>
  </group>
</request>"""
        r = analyze_sword_text(text)
        assert "SPEC130" in _errors(r)


# ----------------------------------------------------------------------
# Language detection and the merged self-check.
# ----------------------------------------------------------------------
class TestFrontDoor:
    def test_detect_by_suffix(self):
        assert detect_language("anything", "spec.vgdl") == "vgdl"
        assert detect_language("anything", "spec.classad") == "classad"
        assert detect_language("anything", "query.xml") == "sword"

    def test_detect_by_content(self):
        assert detect_language("<request/>") == "sword"
        assert detect_language("[ Type = \"Job\" ]") == "classad"
        assert detect_language("virtual grid x") == "vgdl"

    def test_lint_text_rejects_unknown_language(self):
        with pytest.raises(ValueError):
            lint_text("x", lang="cobol")

    def test_analyze_specification_clean_for_generated_like_spec(self):
        from repro.core.generator import ResourceSpecification

        spec = ResourceSpecification(
            heuristic="mcp",
            size=24,
            min_size=20,
            clock_min_mhz=2000.0,
            clock_max_mhz=4000.0,
            connectivity="loose",
            threshold=0.001,
            dag_name="montage",
        )
        report = analyze_specification(spec)
        assert not report.has_errors, report.render()
