"""Tests for resource collections."""

import numpy as np
import pytest

from repro.resources.collection import (
    REFERENCE_CLOCK_GHZ,
    ResourceCollection,
)


def test_homogeneous():
    rc = ResourceCollection.homogeneous(5, speed=2.0)
    assert rc.n_hosts == 5
    assert rc.is_homogeneous()
    assert rc.n_groups == 1
    assert np.all(rc.speed == 2.0)
    assert np.all(rc.clock_ghz() == 2.0 * REFERENCE_CLOCK_GHZ)


def test_empty_rejected():
    with pytest.raises(ValueError):
        ResourceCollection.homogeneous(0)


def test_nonpositive_speed_rejected():
    with pytest.raises(ValueError):
        ResourceCollection(
            speed=np.array([1.0, 0.0]),
            cluster=np.zeros(2, dtype=int),
            comm_factor=np.ones((1, 1)),
        )


def test_cluster_index_validated():
    with pytest.raises(ValueError):
        ResourceCollection(
            speed=np.ones(2),
            cluster=np.array([0, 3]),
            comm_factor=np.ones((2, 2)),
        )


def test_comm_factor_must_be_square():
    with pytest.raises(ValueError):
        ResourceCollection(
            speed=np.ones(2),
            cluster=np.zeros(2, dtype=int),
            comm_factor=np.ones((1, 2)),
        )


def test_heterogeneous_clock(rng):
    rc = ResourceCollection.heterogeneous_clock(100, 0.3, rng)
    assert not rc.is_homogeneous()
    assert rc.speed.min() >= 0.7
    assert rc.speed.max() <= 1.3
    with pytest.raises(ValueError):
        ResourceCollection.heterogeneous_clock(10, 1.5, rng)


def test_heterogeneity_zero_is_homogeneous(rng):
    rc = ResourceCollection.heterogeneous_clock(10, 0.0, rng)
    assert rc.is_homogeneous()


def test_comm_time_same_host(networked_rc):
    assert networked_rc.comm_time(10.0, 3, 3) == 0.0


def test_comm_time_intra_and_inter_cluster(networked_rc):
    assert networked_rc.comm_time(10.0, 0, 1) == pytest.approx(10.0)  # intra
    assert networked_rc.comm_time(10.0, 0, 5) == pytest.approx(80.0)  # inter


def test_groups_by_cluster_and_speed():
    rc = ResourceCollection(
        speed=np.array([1.0, 2.0, 1.0, 2.0]),
        cluster=np.array([0, 0, 1, 1]),
        comm_factor=np.ones((2, 2)),
    )
    assert rc.n_groups == 4
    # Groups sorted by (cluster, speed desc).
    assert list(rc.group_cluster) == [0, 0, 1, 1]
    assert list(rc.group_speed) == [2.0, 1.0, 2.0, 1.0]


def test_subset(networked_rc):
    sub = networked_rc.subset(np.array([0, 5, 6]))
    assert sub.n_hosts == 3
    assert list(sub.cluster) == [0, 1, 1]
    assert sub.comm_factor.shape == (2, 2)


def test_subset_preserves_host_ids():
    rc = ResourceCollection(
        speed=np.ones(4),
        cluster=np.zeros(4, dtype=int),
        comm_factor=np.ones((1, 1)),
        host_ids=np.array([10, 20, 30, 40]),
    )
    sub = rc.subset(np.array([1, 3]))
    assert list(sub.host_ids) == [20, 40]


def test_host_ids_length_checked():
    with pytest.raises(ValueError):
        ResourceCollection(
            speed=np.ones(3),
            cluster=np.zeros(3, dtype=int),
            comm_factor=np.ones((1, 1)),
            host_ids=np.array([1, 2]),
        )


def test_negative_comm_factor_rejected():
    with pytest.raises(ValueError):
        ResourceCollection(
            speed=np.ones(2),
            cluster=np.zeros(2, dtype=int),
            comm_factor=np.array([[-1.0]]),
        )
