"""Tests for the ClassAd parser and unparser."""

import pytest

from repro.selection.classad.parser import (
    AttrRef,
    BinaryOp,
    ClassAd,
    Literal,
    ParseError,
    parse_classad,
    parse_expression,
)


def test_precedence():
    e = parse_expression("1 + 2 * 3")
    assert isinstance(e, BinaryOp) and e.op == "+"
    assert isinstance(e.right, BinaryOp) and e.right.op == "*"


def test_comparison_binds_tighter_than_logic():
    e = parse_expression("a > 1 && b < 2")
    assert e.op == "&&"
    assert e.left.op == ">"
    assert e.right.op == "<"


def test_parentheses():
    e = parse_expression("(1 + 2) * 3")
    assert e.op == "*"
    assert e.left.op == "+"


def test_unary():
    e = parse_expression("!x")
    assert e.op == "!"
    e = parse_expression("-5")
    assert e.op == "-"
    e = parse_expression("+5")
    assert isinstance(e, Literal)


def test_ternary():
    e = parse_expression("a > 1 ? 2 : 3")
    assert e.__class__.__name__ == "Ternary"


def test_scoped_attribute():
    e = parse_expression("cpu.KFlops")
    assert isinstance(e, AttrRef)
    assert e.scope == "cpu"
    assert e.name == "KFlops"


def test_double_scope_rejected():
    with pytest.raises(ParseError):
        parse_expression("a.b.c")


def test_list_expression():
    e = parse_expression("{1, 2, 3}")
    assert len(e.items) == 3
    assert parse_expression("{}").items == ()


def test_record_expression():
    e = parse_expression("[ a = 1; b = 2 ]")
    assert "a" in e.ad and "b" in e.ad


def test_function_call():
    e = parse_expression("min(1, 2)")
    assert e.name == "min"
    assert len(e.args) == 2


def test_trailing_input_rejected():
    with pytest.raises(ParseError):
        parse_expression("1 + 2 extra stuff ;;")


def test_parse_classad_basic():
    ad = parse_classad('[ Type = "Machine"; Memory = 2048 ]')
    assert "Type" in ad
    assert "memory" in ad  # case-insensitive
    assert len(ad) == 2


def test_classad_optional_trailing_semicolon():
    ad = parse_classad("[ a = 1; b = 2; ]")
    assert len(ad) == 2


def test_classad_missing_separator_rejected():
    with pytest.raises(ParseError):
        parse_classad("[ a = 1 b = 2 ]")


def test_classad_preserves_order_and_spelling():
    ad = parse_classad("[ Zeta = 1; Alpha = 2 ]")
    assert list(ad) == ["Zeta", "Alpha"]


def test_from_values_roundtrip():
    ad = ClassAd.from_values({"Clock": 2800, "OpSys": "LINUX", "Flag": True})
    text = ad.unparse()
    back = parse_classad(text)
    assert back["Clock"].value == 2800
    assert back["OpSys"].value == "LINUX"
    assert back["Flag"].value is True


def test_unparse_reparse_expression():
    src = '(Clock >= 2000) && (Memory >= 1024) || OpSys == "LINUX"'
    e = parse_expression(src)
    again = parse_expression(e.unparse())
    assert again.unparse() == e.unparse()


def test_fig_ii2_gangmatch_request_parses():
    text = """
    [ Type  = "Job";
      Owner  = "somedude";
      QDate  = ' Mon Oct 30 12:23:45 2006 (PST) -08:00';
      Cmd    = "run_simulation";
      Ports  = {
        [ Label = cpu;
          ImageSize  = 100M;
          Rank    = cpu.KFlops/1E3 + cpu.Memory/32;
          Constraint  = cpu.Type == "Machine" &&
                        cpu.Arch == "OPTERON" &&
                        cpu.OpSys == "LINUX"
        ],
        [ Label = cpu2;
          ImageSize  = 100M;
          Rank    = cpu2.KFlops/1E3 + cpu2.Memory/32;
          Constraint  = cpu2.Type == "Machine" &&
                        cpu2.Arch == "INTEL" &&
                        cpu2.OpSys == "LINUX"
        ]
      }]
    """
    ad = parse_classad(text)
    assert "Ports" in ad
    assert len(ad["Ports"].items) == 2


def test_nested_record_unparse():
    ad = parse_classad("[ Ports = { [ Label = cpu; Rank = 1 ] } ]")
    text = ad.unparse()
    assert "Label = cpu" in text
    parse_classad(text)  # must re-parse
