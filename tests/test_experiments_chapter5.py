"""Tests for the Chapter V experiment harness (tiny workloads)."""

import numpy as np
import pytest

from repro.core.size_model import build_observation_knees
from repro.dag.random_dag import RandomDagSpec, generate_random_dag
from repro.experiments import chapter5 as c5
from repro.experiments.scales import SMOKE
from tests.conftest import TINY_GRID


@pytest.fixture(scope="module")
def tiny_knees():
    return build_observation_knees(TINY_GRID, seed=0)


def test_turnaround_vs_rc_size_rows():
    rows = c5.turnaround_vs_rc_size(SMOKE, size=60, regularities=(0.1, 0.8))
    assert {r["regularity"] for r in rows} == {0.1, 0.8}
    sizes = [r["rc_size"] for r in rows if r["regularity"] == 0.1]
    assert sizes == sorted(sizes)


def test_knee_table_shape():
    rows = c5.knee_table(SMOKE, size=60)
    assert len(rows) == len(SMOKE.size_grid.parallelisms)
    for row in rows:
        for beta in SMOKE.size_grid.regularities:
            assert row[f"beta={beta}"] >= 1


def test_plane_fit_quality(tiny_knees, tiny_size_model):
    rows = c5.plane_fit_quality(TINY_GRID, tiny_knees, tiny_size_model)
    assert len(rows) == len(TINY_GRID.sizes) * len(TINY_GRID.ccrs)
    # The paper reports <= 16 % mean relative error; allow slack for the
    # tiny grid.
    for row in rows:
        assert row["mean_rel_error_pct"] <= 30.0


def test_optimal_rc_search_candidates(rng):
    dag = generate_random_dag(
        RandomDagSpec(size=80, ccr=0.1, parallelism=0.6, regularity=0.5), rng
    )
    best_size, best_turn, curve = c5.optimal_rc_search(dag, predicted=12)
    assert best_size in curve.sizes
    assert best_turn == curve.best_turnaround
    sampled = set(curve.sizes.tolist())
    # Table V-3 candidates for x = 12.
    assert {12, 6, 3, 1, 24, 30, 36}.issubset(sampled)


def test_optimal_rc_search_never_worse_than_prediction(rng, tiny_size_model):
    dag = generate_random_dag(
        RandomDagSpec(size=100, ccr=0.2, parallelism=0.5, regularity=0.5), rng
    )
    pred = tiny_size_model.predict_for_dag(dag)
    _, best_turn, curve = c5.optimal_rc_search(dag, pred)
    assert best_turn <= curve.at_size(pred) + 1e-9


def test_validate_size_model_quadrants(tiny_size_model):
    # 4 configs per quadrant: a 2-config mean is noisy enough to wander
    # past the 15% bound depending on which DAG instances get drawn.
    rows = c5.validate_size_model(tiny_size_model, SMOKE, max_configs_per_cell=4)
    assert len(rows) == 4
    kinds = {(r["sizes"], r["ccrs"]) for r in rows}
    assert ("observation", "observation") in kinds
    assert ("midpoint", "midpoint") in kinds
    for r in rows:
        # The headline Table V-5 claim: near-optimal performance.
        assert r["avg_degradation_pct"] <= 15.0
        assert r["avg_size_diff_pct"] <= 80.0


def test_width_practice_more_expensive(tiny_size_model):
    # Pool a few validation seeds: a single 4-config draw at smoke scale
    # can land anywhere in the 10-30% range by chance.
    rows = []
    for seed in (0, 1, 2):
        rows += c5.width_practice_comparison(tiny_size_model, SMOKE, seed=seed, max_configs=4)
    assert len(rows) == 3 * len(SMOKE.size_grid.sizes)
    # Current practice grossly over-provisions (Table V-7).
    assert any(r["avg_size_diff_pct"] > 20 for r in rows)
    # ... and never under-provisions on average.
    assert all(r["avg_size_diff_pct"] > 0 for r in rows)


def test_montage_validation_thresholds(tiny_size_model):
    rows = c5.montage_validation(tiny_size_model, SMOKE)
    assert len(rows) == len(tiny_size_model.thresholds())
    sizes = [r["predicted_size"] for r in rows]
    assert sizes == sorted(sizes, reverse=True)  # larger threshold, smaller RC


def test_utility_vs_threshold(tiny_size_model):
    rows = c5.utility_vs_threshold(tiny_size_model, SMOKE, configs=2)
    assert len(rows) == len(tiny_size_model.thresholds())
    for r in rows:
        assert r["degradation_pct"] >= 0


def test_heterogeneity_study(tiny_size_model):
    smoke_like = SMOKE
    rows = c5.heterogeneity_study(
        tiny_size_model, smoke_like, heterogeneities=(0.0, 0.3)
    )
    assert {r["heterogeneity"] for r in rows} == {0.0, 0.3}
    base = [r for r in rows if r["heterogeneity"] == 0.0]
    for r in base:
        assert r["optimal_size_change_pct"] == 0.0
        assert r["optimal_turnaround_change_pct"] == 0.0


def test_heuristic_sensitivity(tiny_size_model):
    rows = c5.heuristic_sensitivity(
        tiny_size_model, SMOKE, heuristics=("mcp", "fca"), conditions=(0.0,), size=60
    )
    assert {r["heuristic"] for r in rows} == {"mcp", "fca"}
    for r in rows:
        assert r["degradation_pct"] >= 0


def test_scr_study_knee_grows_with_scr():
    rows = c5.scr_study(SMOKE, scrs=(0.25, 1.0, 4.0))
    sizes = {r["dag_size"] for r in rows}
    assert sizes == {100, 300}
    grew = False
    for n in sizes:
        sub = [r for r in rows if r["dag_size"] == n]
        knees = {r["scr"]: r["knee"] for r in sub}
        # A faster scheduler amortises larger RCs: knee non-decreasing.
        assert knees[4.0] >= knees[0.25]
        assert sub[0]["fit_gamma"] >= 0
        grew = grew or knees[4.0] > knees[0.25]
    # The Fig. V-18 effect must actually appear for at least one size.
    assert grew
