"""Tests for the shared scheduler machinery (EST computation, state)."""

import numpy as np
import pytest

from repro.dag.graph import dag_from_edges
from repro.dag.random_dag import RandomDagSpec, generate_random_dag
from repro.resources.collection import ResourceCollection
from repro.scheduling.base import SchedulerState, log2ceil


def _brute_force_ready(dag, rc, state, v):
    """Reference EST computation, one host at a time."""
    p = rc.n_hosts
    ready = np.zeros(p)
    for h in range(p):
        t = 0.0
        for e in dag.in_edges(v):
            u = int(dag.edge_src[e])
            arr = state.finish[u] + rc.comm_time(float(dag.edge_comm[e]), int(state.host[u]), h)
            t = max(t, arr)
        ready[h] = t
    return ready


@pytest.mark.parametrize("het_net", [False, True])
def test_data_ready_all_hosts_matches_brute_force(rng, het_net):
    dag = generate_random_dag(
        RandomDagSpec(size=40, ccr=1.0, parallelism=0.5, regularity=0.5, density=0.8),
        rng,
    )
    if het_net:
        factor = np.array([[1.0, 4.0, 16.0], [4.0, 1.0, 8.0], [16.0, 8.0, 1.0]])
        rc = ResourceCollection(
            speed=np.ones(9),
            cluster=np.repeat(np.arange(3), 3),
            comm_factor=factor,
        )
    else:
        rc = ResourceCollection.homogeneous(9)
    state = SchedulerState(dag, rc)
    # Place tasks in topological order on pseudo-random hosts, checking the
    # vectorised ready computation against brute force at every step.
    hosts = rng.integers(0, rc.n_hosts, size=dag.n)
    for v in dag.topo_order:
        ready = state.data_ready_all_hosts(int(v))
        expected = _brute_force_ready(dag, rc, state, int(v))
        np.testing.assert_allclose(ready, expected, atol=1e-9)
        h = int(hosts[v])
        start = max(ready[h], state.avail[h])
        state.place(int(v), h, start)


def test_data_ready_on_host_consistent(rng, networked_rc):
    dag = generate_random_dag(
        RandomDagSpec(size=30, ccr=0.8, parallelism=0.5, regularity=0.5), rng
    )
    state = SchedulerState(dag, networked_rc)
    hosts = rng.integers(0, networked_rc.n_hosts, size=dag.n)
    for v in dag.topo_order:
        all_hosts = state.data_ready_all_hosts(int(v))
        for h in (0, 3, 5, 7):
            assert state.data_ready_on_host(int(v), h) == pytest.approx(all_hosts[h])
        h = int(hosts[v])
        state.place(int(v), h, max(all_hosts[h], state.avail[h]))


def test_entry_task_ready_everywhere(diamond_dag, rc8):
    state = SchedulerState(diamond_dag, rc8)
    assert np.all(state.data_ready_all_hosts(0) == 0.0)
    assert state.data_ready_on_host(0, 3) == 0.0


def test_place_updates_state(diamond_dag, rc8):
    state = SchedulerState(diamond_dag, rc8)
    state.place(0, 2, 1.0)
    assert state.host[0] == 2
    assert state.start[0] == 1.0
    assert state.finish[0] == pytest.approx(5.0)  # comp 4.0 / speed 1.0
    assert state.avail[2] == pytest.approx(5.0)


def test_place_respects_speed(diamond_dag):
    rc = ResourceCollection.homogeneous(2, speed=2.0)
    state = SchedulerState(diamond_dag, rc)
    state.place(0, 0, 0.0)
    assert state.finish[0] == pytest.approx(2.0)


def test_best_finish_vs_best_start():
    # Host 1 busy until t=1 but data is only ready remotely at t=10 on any
    # other host: best-start picks an idle host, best-finish weighs speed.
    dag = dag_from_edges([1.0, 1.0], [(0, 1, 10.0)])
    rc = ResourceCollection.homogeneous(3)
    state = SchedulerState(dag, rc)
    state.place(0, 0, 0.0)
    h_fin, start_fin = state.best_finish_host(1)
    assert h_fin == 0  # co-location avoids the 10 s transfer
    assert start_fin == pytest.approx(1.0)
    h_start, start_start = state.best_start_host(1)
    assert h_start == 0
    assert start_start == pytest.approx(1.0)


def test_parents_sharing_host():
    # Both parents on host 0: ready on host 0 = max parent finish.
    dag = dag_from_edges([2.0, 3.0, 1.0], [(0, 2, 50.0), (1, 2, 50.0)])
    rc = ResourceCollection.homogeneous(2)
    state = SchedulerState(dag, rc)
    state.place(0, 0, 0.0)
    state.place(1, 0, 2.0)
    ready = state.data_ready_all_hosts(2)
    assert ready[0] == pytest.approx(5.0)
    assert ready[1] == pytest.approx(55.0)


def test_log2ceil():
    assert log2ceil(1) == 1.0
    assert log2ceil(2) == 1.0
    assert log2ceil(1024) == 10.0
