"""Differential parity: frozen legacy analyzers vs the typed-IR passes.

The static-analysis rewrite replaced three per-language analyzer walkers
with one lowering (``repro.analysis.ir``) plus shared semantic passes
(``repro.analysis.passes``).  The refactor's contract is *exact*
diagnostic parity: for every document the IR path must emit the same
``(code, severity, span, message, attr, lang)`` sequence — not merely
the same set — as the historic analyzers.  This suite pins that contract
against :mod:`tests._legacy_analysis`, a frozen verbatim copy of the
pre-IR code, over four corpora:

* the shipped ``examples/specs/`` documents,
* a chapter-7-style grid of generated specifications rendered to all
  three languages (a small grid in tier 1, the full sweep nightly),
* a handcrafted nasties corpus (dead disjunction branches, type errors,
  contradictions, duplicate SWORD ranges, bad counts, parse errors),
* a Hypothesis-driven fuzz corpus of constraint expressions.
"""

from __future__ import annotations

from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.classad import analyze_classad_text
from repro.analysis.expr import analyze_constraint
from repro.analysis.sword import analyze_sword_text
from repro.analysis.vgdl import analyze_vgdl_text
from repro.core.generator import ResourceSpecification
from repro.selection.classad.lexer import ClassAdParseError
from repro.selection.classad.parser import parse_expression

from tests._legacy_analysis import (
    legacy_analyze_classad_text,
    legacy_analyze_constraint,
    legacy_analyze_sword_text,
    legacy_analyze_vgdl_text,
)

EXAMPLES = Path(__file__).resolve().parent.parent / "examples" / "specs"

LIVE = {
    "vgdl": analyze_vgdl_text,
    "classad": analyze_classad_text,
    "sword": analyze_sword_text,
}
LEGACY = {
    "vgdl": legacy_analyze_vgdl_text,
    "classad": legacy_analyze_classad_text,
    "sword": legacy_analyze_sword_text,
}


def _sig(report):
    """Full-fidelity diagnostic signature, in emission order."""
    return [
        (
            d.code,
            d.severity,
            None if d.span is None else (d.span.pos, d.span.line, d.span.column),
            d.message,
            d.attr,
            d.lang,
        )
        for d in report.diagnostics
    ]


def _assert_parity(lang: str, text: str) -> None:
    live = _sig(LIVE[lang](text))
    legacy = _sig(LEGACY[lang](text))
    assert live == legacy, (
        f"IR path diverges from legacy analyzer on {lang} document:\n"
        f"live:   {live}\nlegacy: {legacy}\ntext:\n{text}"
    )


# ----------------------------------------------------------------------
# Corpus 1: shipped example documents
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "filename,lang",
    [
        ("montage.vgdl", "vgdl"),
        ("montage.classad", "classad"),
        ("montage.xml", "sword"),
        ("contradictory.classad", "classad"),
    ],
)
def test_example_specs_parity(filename, lang):
    _assert_parity(lang, (EXAMPLES / filename).read_text())


# ----------------------------------------------------------------------
# Corpus 2: chapter-7-style grid of generated specifications
# ----------------------------------------------------------------------
def _grid_specs(sizes, clocks, connectivities):
    specs = []
    for size in sizes:
        for clock_min, clock_max in clocks:
            for connectivity in connectivities:
                specs.append(
                    ResourceSpecification(
                        heuristic="mcp",
                        size=size,
                        min_size=max(1, size - 4),
                        clock_min_mhz=clock_min,
                        clock_max_mhz=clock_max,
                        connectivity=connectivity,
                        threshold=0.001,
                        dag_name=f"grid_{size}_{int(clock_min)}",
                    )
                )
    return specs


def _renderings(spec):
    return [
        ("vgdl", spec.to_vgdl()),
        ("classad", spec.to_classad()),
        ("sword", spec.to_sword_xml()),
    ]


@pytest.mark.parametrize(
    "spec",
    _grid_specs((4, 24), ((2000.0, 4000.0), (1500.0, 1500.0)), ("tight", "loose")),
    ids=lambda s: f"{s.dag_name}-{s.connectivity}",
)
def test_generated_grid_parity(spec):
    for lang, text in _renderings(spec):
        _assert_parity(lang, text)


@pytest.mark.slow
def test_full_grid_parity_sweep():
    # Nightly: the full chapter-7-style sweep in every language.
    specs = _grid_specs(
        sizes=(1, 2, 4, 8, 16, 24, 48, 96),
        clocks=((1000.0, 1000.0), (1500.0, 3000.0), (2000.0, 4000.0), (2500.0, 2500.0)),
        connectivities=("tight", "loose"),
    )
    for spec in specs:
        for lang, text in _renderings(spec):
            _assert_parity(lang, text)


# ----------------------------------------------------------------------
# Corpus 3: handcrafted nasties
# ----------------------------------------------------------------------
NASTY_VGDL = [
    # Bare identifier-shaped string in a numeric comparison (SPEC104 hint).
    'grid_rc = TightBagOf(4, 4, node, [Clock >= fast], rank = Nodes)',
    # Type mismatch: string literal vs number.
    'rc = LooseBagOf(2, 4, node, [Clock >= "fast"], rank = Nodes)',
    # Contradictory clock band.
    "rc = TightBagOf(2, 4, node, [Clock >= 4000 && Clock <= 2000], rank = Nodes)",
    # Bad count range (hi < lo) plus unknown attribute.
    "rc = TightBagOf(9, 4, node, [Blorp >= 10], rank = Nodes)",
    # Dead OR branch.
    "rc = TightBagOf(2, 4, node, [Clock >= 1000 || false], rank = Nodes)",
    # String rank expression.
    'rc = TightBagOf(2, 4, node, [Clock >= 1000], rank = "Nodes")',
    # Nonsense text: parse error.
    "rc = TightBagOf(",
]

NASTY_CLASSAD = [
    # Contradictory requirements.
    '[ Requirements = other.Memory > 4096 && other.Memory < 1024; Rank = 1; ]',
    # Unknown attribute + dead disjunct.
    '[ Requirements = other.Blorp >= 2 || 1 == 2; Rank = other.Mips; ]',
    # Type mismatch in requirements, string rank.
    '[ Requirements = other.OpSys == 42; Rank = "high"; ]',
    # Ports with bad counts.
    '[ Ports = { [ Label = "a"; Count = 0; Requirements = other.Clock >= 100; ] }; ]',
    # Constant-false requirement.
    "[ Requirements = false; ]",
    # Parse error.
    "[ Requirements = ; ]",
]

NASTY_SWORD = [
    # Duplicate range for one attribute.
    (
        "<request><group><name>g</name><numhosts>2</numhosts>"
        "<clock>1000.0, 2000.0, 3000.0, 4000.0, 0.5</clock>"
        "<clock>500.0, 600.0, 700.0, 800.0, 0.1</clock>"
        "</group></request>"
    ),
    # Contradictory required window (lo > hi).
    (
        "<request><group><name>g</name><numhosts>2</numhosts>"
        "<clock>4000.0, 4000.0, 1000.0, 1000.0, 0.5</clock>"
        "</group></request>"
    ),
    # Bad numhosts.
    (
        "<request><group><name>g</name><numhosts>0</numhosts>"
        "<clock>0.0, 0.0, 4000.0, 4000.0, 0.5</clock>"
        "</group></request>"
    ),
    # Parse error.
    "<request><group>",
]


@pytest.mark.parametrize("text", NASTY_VGDL, ids=range(len(NASTY_VGDL)))
def test_nasty_vgdl_parity(text):
    _assert_parity("vgdl", text)


@pytest.mark.parametrize("text", NASTY_CLASSAD, ids=range(len(NASTY_CLASSAD)))
def test_nasty_classad_parity(text):
    _assert_parity("classad", text)


@pytest.mark.parametrize("text", NASTY_SWORD, ids=range(len(NASTY_SWORD)))
def test_nasty_sword_parity(text):
    _assert_parity("sword", text)


# ----------------------------------------------------------------------
# Corpus 4: fuzzed constraint expressions (expression-level parity)
# ----------------------------------------------------------------------
_ATTRS = st.sampled_from(["Clock", "Memory", "Nodes", "OpSys", "Blorp", "fast"])
_NUMS = st.sampled_from(["0", "1", "2", "1000", "4096", "-5", "2.5"])
_STRINGS = st.sampled_from(['"LINUX"', '"fast"', '""'])
_OPS = st.sampled_from([">=", "<=", ">", "<", "==", "!="])
_CONSTS = st.sampled_from(["true", "false", "undefined", "error"])


@st.composite
def _comparison(draw):
    left = draw(_ATTRS)
    op = draw(_OPS)
    right = draw(st.one_of(_NUMS, _STRINGS, _ATTRS, _CONSTS))
    return f"{left} {op} {right}"


@st.composite
def _expression(draw, depth=2):
    if depth == 0 or draw(st.booleans()):
        return draw(st.one_of(_comparison(), _CONSTS, _ATTRS))
    op = draw(st.sampled_from(["&&", "||"]))
    left = draw(_expression(depth=depth - 1))
    right = draw(_expression(depth=depth - 1))
    return f"({left}) {op} ({right})"


@settings(max_examples=120, deadline=None)
@given(
    source=_expression(),
    lang=st.sampled_from(["vgdl", "classad", "sword"]),
    bare=st.booleans(),
)
def test_fuzzed_constraint_parity(source, lang, bare):
    try:
        expr = parse_expression(source)
    except ClassAdParseError:
        return  # parity only concerns analyzable expressions
    live = _sig(
        analyze_constraint(expr, lang=lang, text=source, vgdl_bare_strings=bare)
    )
    legacy = _sig(
        legacy_analyze_constraint(expr, lang=lang, text=source, vgdl_bare_strings=bare)
    )
    assert live == legacy, f"divergence on {source!r} ({lang}, bare={bare})"
