"""Property-based invariants for the scheduler/simulator core.

For *every* registered heuristic, on randomly generated DAGs and randomly
generated resource collections (homogeneous, clock-heterogeneous, and
multi-cluster networked), the schedule must

* pass every execution-model constraint (:func:`validate_schedule` returns
  no violations), and
* be *tight*: :func:`replay_schedule`, which recomputes start/finish times
  independently from only the decisions, reproduces the scheduler's
  predicted times exactly.

DAGs are kept small so Hypothesis can explore many shapes; the invariant
does not depend on scale.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.dag.random_dag import RandomDagSpec, generate_random_dag
from repro.resources.collection import ResourceCollection
from repro.scheduling import (
    list_schedulers,
    replay_schedule,
    schedule_dag,
    validate_schedule,
)

ALL_HEURISTICS = tuple(list_schedulers())


def test_registry_is_complete():
    # The property tests below must cover every registered scheduler.
    assert set(ALL_HEURISTICS) >= {
        "dls", "fca", "fcfs", "greedy", "heft", "mcp", "mcp_insertion", "minmin", "random",
    }


@st.composite
def random_dags(draw):
    spec = RandomDagSpec(
        size=draw(st.integers(min_value=2, max_value=40)),
        ccr=draw(st.sampled_from((0.01, 0.5, 2.0))),
        parallelism=draw(st.floats(min_value=0.1, max_value=1.0)),
        regularity=draw(st.floats(min_value=0.0, max_value=1.0)),
        density=draw(st.floats(min_value=0.1, max_value=1.0)),
        mean_comp_cost=draw(st.sampled_from((1.0, 40.0))),
    )
    rng = np.random.default_rng(draw(st.integers(min_value=0, max_value=2**32 - 1)))
    return generate_random_dag(spec, rng)


@st.composite
def random_rcs(draw):
    n_hosts = draw(st.integers(min_value=1, max_value=10))
    kind = draw(st.sampled_from(("homogeneous", "het_clock", "networked")))
    if kind == "homogeneous":
        return ResourceCollection.homogeneous(n_hosts, speed=draw(st.sampled_from((0.5, 1.0, 2.0))))
    rng = np.random.default_rng(draw(st.integers(min_value=0, max_value=2**32 - 1)))
    if kind == "het_clock":
        eta = draw(st.floats(min_value=0.05, max_value=0.9))
        return ResourceCollection.heterogeneous_clock(n_hosts, eta, rng)
    n_clusters = draw(st.integers(min_value=1, max_value=3))
    inter = draw(st.sampled_from((2.0, 8.0, 32.0)))
    factor = np.full((n_clusters, n_clusters), inter)
    np.fill_diagonal(factor, 1.0)
    return ResourceCollection(
        speed=rng.uniform(0.5, 2.0, size=n_hosts),
        cluster=rng.integers(0, n_clusters, size=n_hosts),
        comm_factor=factor,
    )


@pytest.mark.parametrize("heuristic", ALL_HEURISTICS)
@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(dag=random_dags(), rc=random_rcs())
def test_schedule_is_valid_and_tight(heuristic, dag, rc):
    schedule = schedule_dag(heuristic, dag, rc)

    assert validate_schedule(dag, rc, schedule) == []

    replayed = replay_schedule(dag, rc, schedule)
    np.testing.assert_allclose(replayed.start, schedule.start, atol=1e-8)
    np.testing.assert_allclose(replayed.finish, schedule.finish, atol=1e-8)


@settings(max_examples=10, deadline=None)
@given(dag=random_dags(), rc=random_rcs(), seed=st.integers(min_value=0, max_value=2**16))
def test_random_scheduler_seeded_runs_stay_valid(dag, rc, seed):
    # The stochastic scheduler must satisfy the invariants for any seed,
    # and be reproducible for a fixed seed.
    a = schedule_dag("random", dag, rc, seed=seed)
    b = schedule_dag("random", dag, rc, seed=seed)
    assert validate_schedule(dag, rc, a) == []
    np.testing.assert_array_equal(a.host, b.host)
    np.testing.assert_allclose(a.start, b.start)
    np.testing.assert_allclose(a.finish, b.finish)
