"""Misc selection-engine behaviours: FarFrom/HighBW connectors, SWORD
categorical attrs, vgDL rank expressions."""

import numpy as np
import pytest

from repro.selection.sword import SwordEngine
from repro.selection.vgdl import VgES, parse_vgdl


def test_farfrom_selects_distant_clusters(small_platform):
    vges = VgES(small_platform)
    vg = vges.find_and_bind(
        "V = ClusterOf(a) [1:4] { a = [ Clock >= 1000 ] } "
        "FarFrom LooseBagOf(b) [1:4] { b = [ Clock >= 1000 ] }"
    )
    if vg is None:
        pytest.skip("no sufficiently distant cluster pair on this platform")
    a_clusters = np.unique(small_platform.host_cluster[vg.hosts_per_aggregate[0]])
    b_clusters = np.unique(small_platform.host_cluster[vg.hosts_per_aggregate[1]])
    bw = small_platform.bandwidth_bps
    for ca in a_clusters:
        for cb in b_clusters:
            assert bw[ca, cb] < vges.close_bandwidth_bps


def test_highbw_connector_parses_and_selects(small_platform):
    vges = VgES(small_platform)
    vg = vges.find_and_bind(
        "V = LooseBagOf(a) [1:4] { a = [ Clock >= 1000 ] } "
        "HighBW LooseBagOf(b) [1:4] { b = [ Clock >= 1000 ] }"
    )
    if vg is not None:
        a_c = np.unique(small_platform.host_cluster[vg.hosts_per_aggregate[0]])
        b_c = np.unique(small_platform.host_cluster[vg.hosts_per_aggregate[1]])
        bw = small_platform.bandwidth_bps
        for ca in a_c:
            assert all(bw[ca, cb] >= vges.tight_bandwidth_bps for cb in b_c)


def test_vgdl_rank_expression_over_attributes(small_platform):
    vges = VgES(small_platform)
    # Rank by memory: the chosen cluster must have the max memory among
    # clusters satisfying the constraint.
    vg = vges.find_and_bind(
        "V = ClusterOf(n) [1:2] [rank = Memory] { n = [ Clock >= 1000 ] }"
    )
    assert vg is not None
    chosen = int(small_platform.host_cluster[vg.all_hosts()[0]])
    max_mem = max(c.memory_mb for c in small_platform.clusters)
    assert small_platform.clusters[chosen].memory_mb == max_mem


def test_sword_arch_categorical(small_platform):
    archs = {c.arch for c in small_platform.clusters}
    target = sorted(archs)[0]
    q = f"""
    <request>
      <group>
        <name>g</name>
        <num_machines>2</num_machines>
        <arch><value>{target}, 0.0</value></arch>
      </group>
    </request>
    """
    res = SwordEngine(small_platform).query(q)
    assert res is not None
    for h in res.hosts["g"]:
        cid = int(small_platform.host_cluster[h])
        assert small_platform.clusters[cid].arch == target


def test_sword_soft_categorical_penalty(small_platform):
    # Ask for an OS nobody runs with a soft penalty: feasible, penalised.
    q = """
    <request>
      <group>
        <name>g</name>
        <num_machines>2</num_machines>
        <os><value>PLAN9, 42.0</value></os>
      </group>
    </request>
    """
    res = SwordEngine(small_platform).query(q)
    assert res is not None
    assert res.penalty == pytest.approx(2 * 42.0)


def test_sword_num_cpus(small_platform):
    q = """
    <request>
      <group>
        <name>g</name>
        <num_machines>1</num_machines>
        <num_cpus>1, 1, MAX, MAX, 0.0</num_cpus>
      </group>
    </request>
    """
    res = SwordEngine(small_platform).query(q)
    assert res is not None


def test_sword_hard_clock_infeasible_vs_soft(small_platform):
    fastest = max(c.clock_ghz for c in small_platform.clusters) * 1000
    hard = f"""
    <request>
      <group><name>g</name><num_machines>1</num_machines>
      <clock>{fastest * 2}, {fastest * 2}, MAX, MAX, 1.0</clock></group>
    </request>
    """
    assert SwordEngine(small_platform).query(hard) is None
    soft = f"""
    <request>
      <group><name>g</name><num_machines>1</num_machines>
      <clock>0, {fastest * 2}, MAX, MAX, 0.001</clock></group>
    </request>
    """
    res = SwordEngine(small_platform).query(soft)
    assert res is not None
    assert res.penalty > 0
