"""Tests for insertion-based MCP."""

import numpy as np
import pytest

from repro.dag.graph import dag_from_edges
from repro.dag.random_dag import RandomDagSpec, generate_random_dag
from repro.resources.collection import ResourceCollection
from repro.scheduling import replay_schedule, schedule_dag, validate_schedule
from repro.scheduling.heuristics.insertion import _HostTimeline


def test_timeline_gap_insertion():
    t = _HostTimeline()
    t.occupy(0.0, 5.0)
    t.occupy(10.0, 15.0)
    # A 3-second task ready at 1 fits into [5, 10).
    assert t.earliest_start(1.0, 3.0) == 5.0
    # A 7-second task does not: must go after 15.
    assert t.earliest_start(1.0, 7.0) == 15.0
    # Ready inside a busy interval.
    assert t.earliest_start(12.0, 1.0) == 15.0
    # Fits before the first interval when ready early enough.
    t2 = _HostTimeline()
    t2.occupy(5.0, 8.0)
    assert t2.earliest_start(0.0, 4.0) == 0.0


def test_timeline_occupy_keeps_order():
    t = _HostTimeline()
    t.occupy(10.0, 12.0)
    t.occupy(0.0, 2.0)
    t.occupy(5.0, 6.0)
    assert t.intervals == [(0.0, 2.0), (5.0, 6.0), (10.0, 12.0)]


def test_insertion_registered():
    from repro.scheduling import list_schedulers

    assert "mcp_insertion" in list_schedulers()


def test_insertion_valid_and_replayable(medium_dag, rc8):
    s = schedule_dag("mcp_insertion", medium_dag, rc8)
    assert validate_schedule(medium_dag, rc8, s) == []
    r = replay_schedule(medium_dag, rc8, s)
    np.testing.assert_allclose(r.makespan, s.makespan, atol=1e-9)


def test_insertion_exploits_gap():
    """A short independent task slots into the gap end-of-queue leaves."""
    # Chain 0 -> 1 with a long transfer creates a gap on host 0; task 2 is
    # short and independent.
    dag = dag_from_edges(
        [5.0, 5.0, 2.0],
        [(0, 1, 20.0)],
    )
    rc = ResourceCollection.homogeneous(1)
    plain = schedule_dag("mcp", dag, rc)
    ins = schedule_dag("mcp_insertion", dag, rc)
    assert ins.makespan <= plain.makespan


def test_insertion_never_much_worse_than_plain(rng):
    for seed in range(3):
        dag = generate_random_dag(
            RandomDagSpec(size=100, ccr=1.0, parallelism=0.5, regularity=0.5),
            np.random.default_rng(seed),
        )
        rc = ResourceCollection.homogeneous(8)
        plain = schedule_dag("mcp", dag, rc)
        ins = schedule_dag("mcp_insertion", dag, rc)
        assert validate_schedule(dag, rc, ins) == []
        # Insertion explores a superset of placements per task; greedy
        # interactions can occasionally flip, but not by much.
        assert ins.makespan <= 1.10 * plain.makespan


def test_insertion_heterogeneous(rng):
    dag = generate_random_dag(
        RandomDagSpec(size=60, ccr=0.5, parallelism=0.5, regularity=0.5), rng
    )
    rc = ResourceCollection.heterogeneous_clock(6, 0.4, rng)
    s = schedule_dag("mcp_insertion", dag, rc)
    assert validate_schedule(dag, rc, s) == []
