"""Tests for the §III.1.1 DAG characteristics."""

import math

import numpy as np
import pytest

from repro.dag.graph import dag_from_edges
from repro.dag.metrics import ccr, characteristics, density, parallelism, regularity
from repro.dag.workflows import chain_dag, fork_join_dag


def test_ccr_definition(diamond_dag):
    # Edges: (0,1,1.0) (0,2,2.0) (1,3,1.5) (2,3,0.5); parents cost 4,4,3,5.
    expected = (1.0 / 4 + 2.0 / 4 + 1.5 / 3 + 0.5 / 5) / 4
    assert ccr(diamond_dag) == pytest.approx(expected)


def test_ccr_no_edges():
    assert ccr(dag_from_edges([1.0, 2.0], [])) == 0.0


def test_ccr_zero_cost_parent_ignored():
    d = dag_from_edges([0.0, 1.0], [(0, 1, 5.0)])
    assert ccr(d) == 0.0


def test_parallelism_chain_is_zero():
    assert parallelism(chain_dag(50)) == pytest.approx(0.0)


def test_parallelism_flat_dag_is_one():
    d = dag_from_edges([1.0] * 30, [])
    assert parallelism(d) == pytest.approx(1.0)


def test_parallelism_single_node():
    assert parallelism(dag_from_edges([1.0], [])) == 1.0


def test_parallelism_formula(diamond_dag):
    # n=4, h=3, tau=4/3
    assert parallelism(diamond_dag) == pytest.approx(math.log(4 / 3) / math.log(4))


def test_density_full_dependencies():
    # Every task depends on all tasks of the previous level -> density 1.
    d = fork_join_dag(4, comm_cost=0.1)
    assert density(d) == pytest.approx(1.0)


def test_density_partial(diamond_dag):
    # levels: [0], [1,2], [3]; node1: 1/1, node2: 1/1, node3: 2/2 -> 1.0
    assert density(diamond_dag) == pytest.approx(1.0)


def test_density_half():
    # Level 0 has two tasks; each level-1 task depends on exactly one.
    d = dag_from_edges([1] * 4, [(0, 2, 0.1), (1, 3, 0.1)])
    assert density(d) == pytest.approx(0.5)


def test_density_no_edges():
    assert density(dag_from_edges([1.0, 1.0], [])) == 0.0


def test_regularity_perfectly_regular():
    d = dag_from_edges([1] * 6, [(0, 2, 0.1), (1, 3, 0.1), (2, 4, 0.1), (3, 5, 0.1)])
    # Levels of size 2, 2, 2: tau = 2, max deviation 0.
    assert regularity(d) == pytest.approx(1.0)


def test_regularity_formula(diamond_dag):
    # Sizes [1,2,1], tau = 4/3 -> beta = 1 - (2 - 4/3)/(4/3) = 0.5
    assert regularity(diamond_dag) == pytest.approx(0.5)


def test_regularity_can_be_negative(small_montage):
    assert regularity(small_montage) < 0.0


def test_characteristics_bundle(medium_dag):
    ch = characteristics(medium_dag)
    assert ch.size == medium_dag.n
    assert ch.height == medium_dag.height
    assert ch.width == medium_dag.width
    assert ch.tasks_per_level == pytest.approx(medium_dag.n / medium_dag.height)
    assert ch.mean_comp_cost == pytest.approx(float(medium_dag.comp.mean()))
    assert 0.0 <= ch.parallelism <= 1.0
    d = ch.as_dict()
    assert d["size"] == ch.size
    assert set(d) >= {"ccr", "parallelism", "density", "regularity"}


def test_measured_close_to_generated(rng):
    from repro.dag.random_dag import RandomDagSpec, generate_random_dag

    spec = RandomDagSpec(size=600, ccr=0.4, parallelism=0.6, regularity=0.7, density=0.5)
    ch = characteristics(generate_random_dag(spec, rng))
    assert ch.size == 600
    assert ch.ccr == pytest.approx(0.4, rel=0.15)
    assert ch.parallelism == pytest.approx(0.6, abs=0.07)
    assert ch.density == pytest.approx(0.5, abs=0.1)
    assert ch.regularity >= 0.55  # dispersal bounded by the spec
