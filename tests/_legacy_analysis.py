"""Frozen pre-IR analyzers, kept verbatim for the parity suite.

This module is a byte-faithful copy of the per-language static analyzers
as they existed before the typed constraint IR landed: the
``_ConstraintAnalyzer`` cascade from ``repro.analysis.expr`` plus the
ClassAd/vgDL/SWORD document walkers.  ``tests/test_ir_parity.py`` runs
these against the IR passes and asserts the emitted
``(code, severity, span, message)`` sets are identical over the whole
differential corpus.

Do not "improve" this file: its value is that it does NOT change.  Only
the shared, behavior-free utilities (parsers, ``Interval``,
``fold_constant``, ``infer_type``, fact extractors, ``Span``) are
imported from the live tree — they are the substrate both sides share.
"""

from __future__ import annotations

from repro.analysis.diagnostics import DiagnosticReport, Span
from repro.analysis.expr import (
    DEFAULT_VOCABULARY,
    NONNEGATIVE_ATTRIBUTES,
    _COMPARISON_OPS,
    _IDENT_RE,
    Interval,
    _attr_display,
    _attr_key,
    _walk,
    attr_refs,
    fold_constant,
    infer_type,
    iter_conjuncts,
    iter_disjuncts,
    numeric_bound,
    string_equality,
)
from repro.resources.platform import LATENCY_INTRA_CLUSTER_MS
from repro.selection.classad.evaluator import ErrorValue
from repro.selection.classad.lexer import ClassAdParseError
from repro.selection.classad.parser import (
    AttrRef,
    BinaryOp,
    ClassAd,
    Expr,
    ListExpr,
    Literal,
    RecordExpr,
    parse_classad,
)
from repro.selection.sword import (
    NumericRequirement,
    SwordError,
    SwordQuery,
    parse_sword_query,
)
from repro.selection.vgdl import VgdlError, VgdlSpec, parse_vgdl


class _ConstraintAnalyzer:
    """The pre-IR per-conjunct analysis cascade (frozen copy)."""

    def __init__(
        self,
        *,
        lang: str,
        text: str | None,
        vocab: dict[str, str],
        nonneg: frozenset[str],
        vgdl_bare_strings: bool,
        report: DiagnosticReport,
    ) -> None:
        self.lang = lang
        self.text = text
        self.vocab = vocab
        self.nonneg = nonneg
        self.vgdl_bare_strings = vgdl_bare_strings
        self.report = report
        self.intervals: dict[tuple[str, str], Interval] = {}
        self.interval_names: dict[tuple[str, str], str] = {}
        self.string_eq: dict[tuple[str, str], str] = {}

    def span(self, node: Expr) -> Span | None:
        if self.text is None or node.pos is None:
            return None
        return Span.from_pos(self.text, node.pos)

    def analyze(self, expr: Expr) -> None:
        for conj in iter_conjuncts(expr):
            self._conjunct(conj)

    def _conjunct(self, conj: Expr) -> None:
        suppressed = self._check_types(conj)
        self._check_attr_refs(conj)
        if suppressed:
            return
        if isinstance(conj, BinaryOp) and conj.op == "||":
            self._disjunction(conj)
            return
        folded = fold_constant(conj)
        if folded is not None:
            self._constant(conj, folded)
            return
        bound = numeric_bound(conj)
        if bound is not None:
            self._numeric(conj, *bound)
            return
        eq = string_equality(conj)
        if eq is not None:
            self._string(conj, *eq)

    def _check_types(self, conj: Expr) -> bool:
        emitted = False
        for node in _walk(conj):
            if not (isinstance(node, BinaryOp) and node.op in _COMPARISON_OPS):
                continue
            lt = infer_type(node.left, self.vocab)
            rt = infer_type(node.right, self.vocab)
            if self.vgdl_bare_strings and self._bare_string_numeric(node, lt, rt):
                emitted = True
                continue
            concrete = {"number", "string", "bool"}
            if lt in concrete and rt in concrete and lt != rt:
                self.report.add(
                    "SPEC103",
                    "error",
                    f"comparison {node.unparse()} mixes {lt} and {rt}; "
                    "it always evaluates to ERROR and never matches",
                    self.lang,
                    span=self.span(node),
                )
                emitted = True
        return emitted

    def _bare_string_numeric(self, node: BinaryOp, lt: str, rt: str) -> bool:
        for side, side_t, other_t in ((node.left, lt, rt), (node.right, rt, lt)):
            if (
                isinstance(side, Literal)
                and isinstance(side.value, str)
                and _IDENT_RE.match(side.value)
                and other_t == "number"
            ):
                self.report.add(
                    "SPEC104",
                    "error",
                    f"{side.value!r} is not a known attribute; vgDL treats "
                    "unknown identifiers as string literals, so "
                    f"{node.unparse()} compares a string with a number and "
                    "never matches",
                    self.lang,
                    span=self.span(node),
                    attr=side.value,
                )
                return True
        return False

    def _check_attr_refs(self, conj: Expr) -> None:
        for ref in attr_refs(conj):
            if ref.name.lower() not in self.vocab:
                self.report.add(
                    "SPEC104",
                    "warning",
                    f"attribute {_attr_display(ref)!r} is not provided by any "
                    "backend; it evaluates to UNDEFINED",
                    self.lang,
                    span=self.span(ref),
                    attr=ref.name,
                )

    def _disjunction(self, conj: BinaryOp) -> None:
        branches = list(iter_disjuncts(conj))
        dead = 0
        for branch in branches:
            sub = _ConstraintAnalyzer(
                lang=self.lang,
                text=self.text,
                vocab=self.vocab,
                nonneg=self.nonneg,
                vgdl_bare_strings=self.vgdl_bare_strings,
                report=DiagnosticReport(),
            )
            sub.analyze(branch)
            branch_dead = any(d.code in ("SPEC101", "SPEC105") for d in sub.report)
            if branch_dead:
                dead += 1
                self.report.add(
                    "SPEC106",
                    "warning",
                    f"OR-branch {branch.unparse()} is unsatisfiable on its own "
                    "(dead disjunct)",
                    self.lang,
                    span=self.span(branch),
                )
            for d in sub.report:
                if d.code not in ("SPEC101", "SPEC105", "SPEC102"):
                    self.report.diagnostics.append(d)
        if branches and dead == len(branches):
            self.report.add(
                "SPEC105",
                "error",
                f"every branch of {conj.unparse()} is unsatisfiable; the "
                "clause can never hold",
                self.lang,
                span=self.span(conj),
            )

    def _constant(self, conj: Expr, value: object) -> None:
        is_plain_number = isinstance(value, (int, float)) and not isinstance(value, bool)
        if value is False or (is_plain_number and value == 0):
            self.report.add(
                "SPEC105",
                "error",
                f"clause {conj.unparse()} is constant false; the constraint "
                "can never hold",
                self.lang,
                span=self.span(conj),
            )
        elif value is True or (is_plain_number and value != 0):
            self.report.add(
                "SPEC102",
                "warning",
                f"clause {conj.unparse()} is constant true (dead clause)",
                self.lang,
                span=self.span(conj),
            )
        elif isinstance(value, ErrorValue):
            self.report.add(
                "SPEC103",
                "error",
                f"clause {conj.unparse()} always evaluates to ERROR",
                self.lang,
                span=self.span(conj),
            )

    def _numeric(self, conj: Expr, ref: AttrRef, op: str, value: float) -> None:
        attr_t = self.vocab.get(ref.name.lower())
        if attr_t is not None and attr_t != "number":
            return
        new = Interval.from_comparison(op, value)
        if new is None:
            return
        key = _attr_key(ref)
        name = _attr_display(ref)
        if key not in self.intervals and ref.name.lower() in self.nonneg:
            self.intervals[key] = Interval(lo=0.0)
        old = self.intervals.get(key, Interval())
        merged = old.intersect(new)
        self.interval_names[key] = name
        if merged.is_empty and not old.is_empty:
            self.report.add(
                "SPEC101",
                "error",
                f"contradictory constraints on {name}: {conj.unparse()} leaves "
                f"no value in {old.describe(name)}",
                self.lang,
                span=self.span(conj),
                attr=ref.name,
            )
        elif merged == old and not old.is_empty:
            self.report.add(
                "SPEC102",
                "warning",
                f"clause {conj.unparse()} is implied by the domain or earlier "
                f"constraints ({old.describe(name)}); dead clause",
                self.lang,
                span=self.span(conj),
                attr=ref.name,
            )
        self.intervals[key] = merged

    def _string(self, conj: Expr, ref: AttrRef, value: str) -> None:
        key = _attr_key(ref)
        name = _attr_display(ref)
        prev = self.string_eq.get(key)
        if prev is None:
            self.string_eq[key] = value.lower()
        elif prev != value.lower():
            self.report.add(
                "SPEC101",
                "error",
                f"contradictory constraints on {name}: it cannot equal both "
                f"{prev!r} and {value!r}",
                self.lang,
                span=self.span(conj),
                attr=ref.name,
            )
        else:
            self.report.add(
                "SPEC102",
                "warning",
                f"clause {conj.unparse()} repeats an earlier equality (dead "
                "clause)",
                self.lang,
                span=self.span(conj),
                attr=ref.name,
            )


def legacy_analyze_constraint(
    expr: Expr,
    *,
    lang: str,
    text: str | None = None,
    vocab: dict[str, str] | None = None,
    nonneg: frozenset[str] | None = None,
    vgdl_bare_strings: bool = False,
    report: DiagnosticReport | None = None,
) -> DiagnosticReport:
    """Frozen copy of the pre-IR ``analyze_constraint``."""
    analyzer = _ConstraintAnalyzer(
        lang=lang,
        text=text,
        vocab=DEFAULT_VOCABULARY if vocab is None else vocab,
        nonneg=NONNEGATIVE_ATTRIBUTES if nonneg is None else nonneg,
        vgdl_bare_strings=vgdl_bare_strings,
        report=DiagnosticReport() if report is None else report,
    )
    analyzer.analyze(expr)
    return analyzer.report


# ----------------------------------------------------------------------
# ClassAd document walker (frozen copy of repro.analysis.classad)
# ----------------------------------------------------------------------
def legacy_analyze_classad_text(text: str) -> DiagnosticReport:
    """Frozen copy of the pre-IR ``analyze_classad_text``."""
    report = DiagnosticReport()
    try:
        ad = parse_classad(text)
    except ClassAdParseError as exc:
        span = None if exc.pos is None else Span.from_pos(text, exc.pos)
        report.add("SPEC001", "error", exc.message, "classad", span=span)
        return report
    return legacy_analyze_classad_request(ad, text=text, report=report)


def legacy_analyze_classad_request(
    ad: ClassAd,
    *,
    text: str | None = None,
    report: DiagnosticReport | None = None,
) -> DiagnosticReport:
    """Frozen copy of the pre-IR ``analyze_classad_request``."""
    report = DiagnosticReport() if report is None else report
    ports = ad.get("Ports")
    if isinstance(ports, ListExpr):
        for port in ports.items:
            if isinstance(port, RecordExpr):
                _analyze_port(port.ad, text, report)
    _analyze_constraint_attr(ad, "Requirements", text, report)
    _analyze_rank(ad, text, report)
    return report


def _span_of(expr: Expr, text: str | None) -> Span | None:
    if text is None or expr.pos is None:
        return None
    return Span.from_pos(text, expr.pos)


def _analyze_port(port: ClassAd, text: str | None, report: DiagnosticReport) -> None:
    count = port.get("Count")
    if isinstance(count, Literal):
        v = count.value
        ok = isinstance(v, int) and not isinstance(v, bool) and v >= 1
        if not ok:
            report.add(
                "SPEC110",
                "error",
                f"port Count must be a positive integer, got {count.unparse()}",
                "classad",
                span=_span_of(count, text),
                attr="Count",
            )
    _analyze_constraint_attr(port, "Constraint", text, report)
    _analyze_rank(port, text, report)


def _analyze_constraint_attr(
    ad: ClassAd, name: str, text: str | None, report: DiagnosticReport
) -> None:
    expr = ad.get(name)
    if expr is not None:
        legacy_analyze_constraint(expr, lang="classad", text=text, report=report)


def _analyze_rank(ad: ClassAd, text: str | None, report: DiagnosticReport) -> None:
    rank = ad.get("Rank")
    if rank is None:
        return
    if isinstance(rank, AttrRef) and rank.scope is not None:
        return
    if infer_type(rank) == "string":
        report.add(
            "SPEC120",
            "warning",
            f"Rank expression {rank.unparse()} is a string; ranks should be "
            "numeric (higher = better)",
            "classad",
            span=_span_of(rank, text),
            attr="Rank",
        )


# ----------------------------------------------------------------------
# vgDL document walker (frozen copy of repro.analysis.vgdl)
# ----------------------------------------------------------------------
def legacy_analyze_vgdl_text(text: str) -> DiagnosticReport:
    """Frozen copy of the pre-IR ``analyze_vgdl_text``."""
    report = DiagnosticReport()
    try:
        spec = parse_vgdl(text)
    except VgdlError as exc:
        span = None if exc.pos is None else Span.from_pos(text, exc.pos)
        report.add("SPEC001", "error", str(exc), "vgdl", span=span)
        return report
    return legacy_analyze_vgdl_spec(spec, text=text, report=report)


def legacy_analyze_vgdl_spec(
    spec: VgdlSpec,
    *,
    text: str | None = None,
    report: DiagnosticReport | None = None,
) -> DiagnosticReport:
    """Frozen copy of the pre-IR ``analyze_vgdl_spec``."""
    report = DiagnosticReport() if report is None else report
    for agg in spec.aggregates:
        if agg.lo < 1 or agg.hi < agg.lo:
            report.add(
                "SPEC110",
                "error",
                f"aggregate {agg.var!r} has an invalid size range "
                f"[{agg.lo}:{agg.hi}]",
                "vgdl",
                attr=agg.var,
            )
        if agg.rank is not None and infer_type(agg.rank) == "string":
            report.add(
                "SPEC120",
                "warning",
                f"rank expression {agg.rank.unparse()} of aggregate "
                f"{agg.var!r} is a string; ranks should be numeric",
                "vgdl",
                span=(
                    None
                    if text is None or agg.rank.pos is None
                    else Span.from_pos(text, agg.rank.pos)
                ),
                attr=agg.var,
            )
        legacy_analyze_constraint(
            agg.constraint,
            lang="vgdl",
            text=text,
            vgdl_bare_strings=True,
            report=report,
        )
    return report


# ----------------------------------------------------------------------
# SWORD document walker (frozen copy of repro.analysis.sword)
# ----------------------------------------------------------------------
def _tag_span(text: str | None, tag: str, occurrence: int = 0) -> Span | None:
    if text is None:
        return None
    needle = f"<{tag}>"
    pos = -1
    for _ in range(occurrence + 1):
        pos = text.find(needle, pos + 1)
        if pos < 0:
            return None
    return Span.from_pos(text, pos)


def legacy_analyze_sword_text(text: str) -> DiagnosticReport:
    """Frozen copy of the pre-IR ``analyze_sword_text``."""
    report = DiagnosticReport()
    try:
        query = parse_sword_query(text)
    except SwordError as exc:
        report.add("SPEC001", "error", str(exc), "sword")
        return report
    return legacy_analyze_sword_query(query, text=text, report=report)


def legacy_analyze_sword_query(
    query: SwordQuery,
    *,
    text: str | None = None,
    report: DiagnosticReport | None = None,
) -> DiagnosticReport:
    """Frozen copy of the pre-IR ``analyze_sword_query``."""
    report = DiagnosticReport() if report is None else report
    for name, value in (
        ("dist_query_budget", query.dist_query_budget),
        ("optimizer_budget", query.optimizer_budget),
    ):
        if value < 1:
            report.add(
                "SPEC130",
                "error",
                f"{name} must be positive, got {value}; the optimizer would "
                "visit no zones and the query can never be answered",
                "sword",
                span=_tag_span(text, name),
                attr=name,
            )
    for group in query.groups:
        _analyze_group(group, text, report)
    for c in query.constraints:
        if c.latency.required_hi < LATENCY_INTRA_CLUSTER_MS:
            report.add(
                "SPEC133",
                "error",
                f"inter-group latency bound {c.latency.required_hi}ms between "
                f"{c.group_names[0]!r} and {c.group_names[1]!r} is below the "
                f"platform's intra-cluster floor "
                f"({LATENCY_INTRA_CLUSTER_MS}ms); no host pair can satisfy it",
                "sword",
                span=_tag_span(text, "constraint"),
            )
    return report


def _analyze_group(group, text: str | None, report: DiagnosticReport) -> None:
    if group.num_machines < 1:
        report.add(
            "SPEC110",
            "error",
            f"group {group.name!r} requests {group.num_machines} machines; "
            "num_machines must be a positive integer",
            "sword",
            attr=group.name,
        )
    merged: dict[str, NumericRequirement] = {}
    for req in group.numeric:
        prev = merged.get(req.attr)
        if prev is not None:
            lo = max(prev.required_lo, req.required_lo)
            hi = min(prev.required_hi, req.required_hi)
            if lo > hi:
                report.add(
                    "SPEC131",
                    "error",
                    f"group {group.name!r} has contradictory {req.attr} "
                    f"requirements: [{prev.required_lo}, {prev.required_hi}] "
                    f"and [{req.required_lo}, {req.required_hi}] do not "
                    "intersect",
                    "sword",
                    span=_tag_span(text, req.attr, occurrence=1),
                    attr=req.attr,
                )
        merged[req.attr] = req
    hard: dict[str, str] = {}
    for cat in group.categorical:
        if cat.penalty_rate > 0:
            continue
        prev = hard.get(cat.attr)
        if prev is not None and prev != cat.value.lower():
            report.add(
                "SPEC131",
                "error",
                f"group {group.name!r} hard-requires {cat.attr} to equal both "
                f"{prev!r} and {cat.value!r}",
                "sword",
                span=_tag_span(text, cat.attr, occurrence=1),
                attr=cat.attr,
            )
        hard[cat.attr] = cat.value.lower()
    if group.latency is not None and group.latency.required_hi < LATENCY_INTRA_CLUSTER_MS:
        report.add(
            "SPEC133",
            "error",
            f"group {group.name!r} bounds intra-group latency at "
            f"{group.latency.required_hi}ms, below the platform's "
            f"intra-cluster floor ({LATENCY_INTRA_CLUSTER_MS}ms); no zone "
            "can satisfy it",
            "sword",
            span=_tag_span(text, "latency"),
            attr="latency",
        )
