"""Chaos matrix for the resilient selection service (repro.service).

Every scenario here is fully deterministic — fault decisions are pure
functions of ``(seed, stable key)`` — so "the service survives chaos"
is an exact, replayable claim.  The matrix covers the issue's proof
obligations:

* **Isolation** — an injected tenant crash surfaces as a structured
  ``tenant_crash`` outcome, its admission slot and bound hosts are
  released, and the *other* tenants' outcomes are byte-identical to a
  run without the victim.  No exception escapes ``run()``.
* **Breakers** — a faulted backend trips its circuit breaker after K
  consecutive failures, the ladder routes around it, and the breaker
  half-opens on the virtual-time cooldown and closes once the backend
  recovers.  Counters cross-check against the outcomes' own attempts.
* **Crash recovery** — a run killed mid-serve (``kill_after`` /
  ``crash_after``) resumes from its write-ahead journal to a final
  report bit-identical to an uninterrupted run; mismatched inputs and
  journal divergence are hard errors.
* **Accounting** — every structured abort class equals its
  ``service.*`` failure counter.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest

import repro.observe as observe
from repro.dag.montage import montage_dag, montage_level_counts
from repro.faults import KILL_EXIT_CODE, InjectedFault, ServiceFaultInjector
from repro.journal import JournalError
from repro.observe import MetricsRegistry
from repro.resources.churn import ChurnConfig
from repro.selection.pipeline import PipelineConfig
from repro.service import (
    SelectionService,
    ServiceConfig,
    TenantRequest,
    make_spec,
    synthesize_requests,
)

CHURNY = ChurnConfig(fail_rate=0.002, competitor_rate=0.01, utilization=0.3, seed=11)
QUIET = ChurnConfig()


def _serve(
    platform,
    requests,
    *,
    churn=CHURNY,
    faults=None,
    journal_path=None,
    resume_path=None,
    **cfg_kwargs,
):
    """Run the service under an isolated registry; return (report, counters)."""
    registry = MetricsRegistry()
    with observe.use_registry(registry):
        service = SelectionService(
            platform, churn, ServiceConfig(**cfg_kwargs), faults=faults
        )
        report = service.run(
            requests, journal_path=journal_path, resume_path=resume_path
        )
    return report, registry.snapshot()["counters"], service


def _outcome_dicts(report):
    return [o.to_dict() for o in report.outcomes]


# ----------------------------------------------------------------------
# Failure isolation: tenant crashes never take the service down
# ----------------------------------------------------------------------
def test_admit_stage_crash_isolates_victim_bit_identically(small_platform):
    # The victim is the LAST request id, crashing before it submits any
    # dispatcher op — so the survivors' op streams are identical with
    # and without it, and their outcomes must be byte-identical.
    requests = synthesize_requests(small_platform, 8, seed=3)
    victim = len(requests) - 1
    faults = ServiceFaultInjector(crash_tenant=victim, crash_stage="admit")
    with_victim, counters, _ = _serve(small_platform, requests, faults=faults)
    without_victim, _, _ = _serve(small_platform, requests[:victim])

    assert with_victim.n_crashed == 1
    assert counters["service.tenant_crashes"] == 1
    crashed = with_victim.outcomes[victim]
    assert crashed.outcome is not None
    assert crashed.outcome.abort_reason == "tenant_crash"
    assert not crashed.outcome.fulfilled
    # Everyone else is untouched — byte-for-byte.
    assert _outcome_dicts(with_victim)[:victim] == _outcome_dicts(without_victim)


def test_bound_stage_crash_releases_hosts_and_slot(small_platform):
    # Crash *after* the victim bound hosts: the supervisor must release
    # exactly what the dead tenant owned, and the freed slot lets every
    # later tenant still complete.
    requests = synthesize_requests(small_platform, 8, seed=3)
    faults = ServiceFaultInjector(crash_tenant=2, crash_stage="bound")
    report, counters, service = _serve(small_platform, requests, faults=faults)

    assert report.n_crashed == 1
    assert report.outcomes[2].admitted  # it got through admission
    assert report.outcomes[2].outcome.abort_reason == "tenant_crash"
    assert report.n_fulfilled == len(requests) - 1
    # Nothing the tenants bound is left behind (competitor grabs may be).
    leaked = service._binder.bound_hosts - service._churn.competitor_held
    assert leaked == set()


def test_probabilistic_chaos_no_exception_escapes(small_platform):
    # The kitchen sink: crash/error/stall probabilities all at once.
    # run() must return a full report — structured aborts, not raises —
    # and every abort class must equal its failure counter.
    requests = synthesize_requests(small_platform, 10, seed=3)
    faults = ServiceFaultInjector(
        tenant_crash_p=0.25,
        backend_error_p=0.3,
        bind_stall_p=0.3,
        stall_s=5.0,
        seed=7,
    )
    report, counters, _ = _serve(small_platform, requests, faults=faults)

    assert len(report.outcomes) == len(requests)
    crashed = [
        o
        for o in report.outcomes
        if o.outcome is not None and o.outcome.abort_reason == "tenant_crash"
    ]
    assert len(crashed) == counters.get("service.tenant_crashes", 0)
    backend_errors = sum(
        1
        for o in report.outcomes
        if o.outcome is not None
        for a in o.outcome.attempts
        if a.result == "backend_error"
    )
    assert backend_errors == counters.get("service.backend_errors", 0)
    refused = [o for o in report.outcomes if not o.admitted and o.outcome is None]
    assert len(refused) == (
        counters.get("service.refusals", 0) + counters.get("service.sheds", 0)
    )
    # And the whole matrix replays bit-identically.
    again, counters2, _ = _serve(small_platform, requests, faults=faults)
    assert _outcome_dicts(report) == _outcome_dicts(again)
    assert counters == counters2


def test_fault_decisions_are_pure_functions_of_seed(small_platform):
    requests = synthesize_requests(small_platform, 8, seed=3)
    r7a, _, _ = _serve(
        small_platform, requests, faults=ServiceFaultInjector(tenant_crash_p=0.3, seed=7)
    )
    r7b, _, _ = _serve(
        small_platform, requests, faults=ServiceFaultInjector(tenant_crash_p=0.3, seed=7)
    )
    r8, _, _ = _serve(
        small_platform, requests, faults=ServiceFaultInjector(tenant_crash_p=0.3, seed=8)
    )
    assert _outcome_dicts(r7a) == _outcome_dicts(r7b)
    # A different seed dooms a different victim set (at p=0.3 over 8
    # tenants the two seeds are astronomically unlikely to agree).
    assert _outcome_dicts(r7a) != _outcome_dicts(r8)


# ----------------------------------------------------------------------
# Circuit breakers
# ----------------------------------------------------------------------
def test_breaker_trips_routes_around_and_recovers(small_platform):
    # vgES errors until t=40: early tenants trip its breaker (threshold
    # 2) and fall back to ClassAd via `breaker_open`; tenants arriving
    # after the cooldown half-open the breaker, the probe succeeds (the
    # fault window is over), and vgES serves again.
    requests = synthesize_requests(small_platform, 8, seed=3, spacing_s=40.0)
    faults = ServiceFaultInjector(
        backend_error_p=1.0, fault_backend="vges", until_s=40.0
    )
    report, counters, _ = _serve(
        small_platform,
        requests,
        churn=QUIET,
        faults=faults,
        breaker_threshold=2,
        breaker_cooldown_s=30.0,
    )

    assert report.n_fulfilled == len(requests)
    assert counters["service.breaker_trips"] >= 1
    assert counters["service.breaker_half_opens"] >= 1
    assert counters["service.breaker_closes"] >= 1
    # While open, the ladder routed around vgES instead of burning
    # retries against it.
    assert counters["service.breaker_skips"] >= 1
    backends = {
        o.outcome.backend for o in report.outcomes if o.outcome is not None
    }
    assert "classad" in backends  # early tenants fell back
    assert "vges" in backends  # late tenants used the recovered backend
    # Counter/outcome cross-checks.
    breaker_open_refusals = sum(
        1
        for o in report.outcomes
        if o.outcome is not None
        for a in o.outcome.attempts
        if a.result == "breaker_open"
    )
    assert breaker_open_refusals == counters["service.breaker_skips"]
    injected_errors = sum(
        1
        for o in report.outcomes
        if o.outcome is not None
        for a in o.outcome.attempts
        if a.result == "backend_error"
    )
    assert injected_errors == counters["service.backend_errors"]


def test_breaker_stays_open_if_backend_still_down(small_platform):
    # Faults never expire: every half-open probe fails, the breaker
    # re-trips, and everything is served by the fallback backends.
    requests = synthesize_requests(small_platform, 6, seed=3, spacing_s=200.0)
    faults = ServiceFaultInjector(backend_error_p=1.0, fault_backend="vges")
    report, counters, _ = _serve(
        small_platform,
        requests,
        churn=QUIET,
        faults=faults,
        breaker_threshold=2,
        breaker_cooldown_s=50.0,
    )
    assert report.n_fulfilled == len(requests)
    assert counters.get("service.breaker_closes", 0) == 0
    assert counters["service.breaker_half_opens"] >= 1
    assert counters["service.breaker_trips"] >= 2  # initial trip + re-trip
    assert all(
        o.outcome.backend != "vges"
        for o in report.outcomes
        if o.outcome is not None and o.outcome.fulfilled
    )


# ----------------------------------------------------------------------
# Deadlines and overload
# ----------------------------------------------------------------------
def test_deadline_aborts_are_structured_and_counted(small_platform):
    requests = synthesize_requests(small_platform, 6, seed=3)
    report, counters, _ = _serve(
        small_platform, requests, churn=QUIET, deadline_s=0.001
    )
    aborted = [
        o
        for o in report.outcomes
        if o.outcome is not None and o.outcome.abort_reason == "deadline_exceeded"
    ]
    assert len(aborted) == len(requests)  # everyone blows the tiny budget
    assert counters["service.deadline_aborts"] == len(aborted)
    assert report.n_fulfilled == 0
    assert report.n_refused == 0  # admission is not the deadline's job


def test_per_request_deadline_overrides_service_default(small_platform):
    dag = montage_dag(montage_level_counts(3), ccr=0.01)
    spec = make_spec(dag, 6, ccr=0.01)
    requests = [
        TenantRequest(tenant=0, dag=dag, spec=spec, arrival_s=0.0),
        TenantRequest(
            tenant=1, dag=dag, spec=spec, arrival_s=0.0, deadline_s=0.001
        ),
    ]
    report, _, _ = _serve(small_platform, requests, churn=QUIET)
    assert report.outcomes[0].outcome.fulfilled
    assert report.outcomes[1].outcome.abort_reason == "deadline_exceeded"


def test_priority_shedding_prefers_important_tenants(small_platform):
    # Three same-instant arrivals into one slot + a one-deep queue: the
    # priority-5 request is shed even though it arrived *before* the
    # priority-2 one — admission is by importance, not arrival luck.
    dag = montage_dag(montage_level_counts(3), ccr=0.01)
    spec = make_spec(dag, 5, ccr=0.01)
    requests = [
        TenantRequest(tenant=0, dag=dag, spec=spec, arrival_s=0.0, priority=1),
        TenantRequest(tenant=1, dag=dag, spec=spec, arrival_s=0.0, priority=5),
        TenantRequest(tenant=2, dag=dag, spec=spec, arrival_s=0.0, priority=2),
    ]
    report, counters, _ = _serve(
        small_platform,
        requests,
        churn=QUIET,
        max_inflight=1,
        queue_capacity=1,
    )
    by_tenant = {o.tenant: o for o in report.outcomes}
    assert by_tenant[1].refusal_reason == "shed"
    assert by_tenant[0].admitted and by_tenant[2].admitted
    assert counters["service.sheds"] == 1
    assert report.n_shed == 1
    assert report.n_refused == 1  # the shed is admission-control's doing


def test_brownout_sheds_optional_work_under_pressure(small_platform):
    # Saturating arrivals with a low brownout threshold: optional work
    # (alternatives, preflight, baselines) is skipped under pressure,
    # yet every admitted request still completes.
    requests = synthesize_requests(small_platform, 8, seed=3, spacing_s=0.0)
    report, counters, _ = _serve(
        small_platform,
        requests,
        churn=CHURNY,
        max_inflight=2,
        queue_capacity=8,
        brownout_threshold=0.5,
    )
    assert counters["service.brownout_entries"] >= 1
    assert report.n_fulfilled + report.n_crashed == len(requests)
    # Brownout is pressure-relief, not correctness-relief: replaying the
    # same saturated run is still bit-identical.
    again, counters2, _ = _serve(
        small_platform,
        requests,
        churn=CHURNY,
        max_inflight=2,
        queue_capacity=8,
        brownout_threshold=0.5,
    )
    assert _outcome_dicts(report) == _outcome_dicts(again)
    assert counters == counters2


# ----------------------------------------------------------------------
# Churn storms
# ----------------------------------------------------------------------
def test_churn_storm_kills_hosts_deterministically(small_platform):
    requests = synthesize_requests(small_platform, 6, seed=3)
    faults = ServiceFaultInjector(storm_at_s=5.0, storm_kill=40, seed=9)
    r1, c1, service = _serve(small_platform, requests, churn=QUIET, faults=faults)
    r2, c2, _ = _serve(small_platform, requests, churn=QUIET, faults=faults)
    assert _outcome_dicts(r1) == _outcome_dicts(r2)
    assert c1 == c2
    # The storm's victims really left the platform (quiet churn never
    # kills hosts on its own).
    assert len(service._churn.dead) == 40
    # And the service kept serving through it.
    assert r1.n_fulfilled + r1.n_crashed + sum(
        1
        for o in r1.outcomes
        if o.outcome is not None and not o.outcome.fulfilled
    ) == len(requests)


# ----------------------------------------------------------------------
# Crash recovery: write-ahead journal + resume
# ----------------------------------------------------------------------
def test_crash_after_resumes_bit_identical(small_platform, tmp_path):
    requests = synthesize_requests(small_platform, 8, seed=3)
    journal = str(tmp_path / "run.jsonl")

    # Reference: the same inputs served uninterrupted (no fault armed).
    reference, ref_counters, _ = _serve(small_platform, requests)

    # The journaled run dies after batch 4 (an injected dispatcher
    # crash — the critical task, so it propagates out of run()).
    faults = ServiceFaultInjector(crash_after=4)
    with pytest.raises(InjectedFault):
        _serve(
            small_platform, requests, faults=faults, journal_path=journal
        )

    # Resume with the *same* fault spec: the armed batch is replayed,
    # not re-written, so the crash does not re-fire, and the final
    # report matches the uninterrupted run bit-for-bit.
    resumed, res_counters, _ = _serve(
        small_platform, requests, faults=faults, resume_path=journal
    )
    assert _outcome_dicts(resumed) == _outcome_dicts(reference)
    assert resumed.fairness == reference.fairness
    # Ladder/fairness counters agree too (journal bookkeeping aside).
    for key, value in ref_counters.items():
        assert res_counters.get(key) == value, key


def test_resume_is_interleave_seed_independent(small_platform, tmp_path):
    # The journal digests deliberately exclude interleave_seed: batch
    # contents are interleave-invariant, so a journal written under one
    # seed must verify and resume under any other.
    requests = synthesize_requests(small_platform, 6, seed=3)
    journal = str(tmp_path / "run.jsonl")
    faults = ServiceFaultInjector(crash_after=3)
    with pytest.raises(InjectedFault):
        _serve(
            small_platform,
            requests,
            faults=faults,
            journal_path=journal,
            interleave_seed=0,
        )
    reference, _, _ = _serve(small_platform, requests)
    resumed, _, _ = _serve(
        small_platform,
        requests,
        faults=faults,
        resume_path=journal,
        interleave_seed=99,
    )
    assert _outcome_dicts(resumed) == _outcome_dicts(reference)


def test_resume_refuses_mismatched_inputs(small_platform, tmp_path):
    requests = synthesize_requests(small_platform, 6, seed=3)
    journal = str(tmp_path / "run.jsonl")
    faults = ServiceFaultInjector(crash_after=3)
    with pytest.raises(InjectedFault):
        _serve(small_platform, requests, faults=faults, journal_path=journal)
    # One extra tenant changes the inputs digest: resuming would replay
    # a different run into the journal's state — refused up front.
    other = synthesize_requests(small_platform, 7, seed=3)
    with pytest.raises(JournalError, match="inputs"):
        _serve(small_platform, other, faults=faults, resume_path=journal)


def test_clean_journal_reruns_and_verifies(small_platform, tmp_path):
    # Resuming a *complete* journal is pure verification: every batch
    # replays against its record and the report is unchanged.
    requests = synthesize_requests(small_platform, 6, seed=3)
    journal = str(tmp_path / "run.jsonl")
    first, _, _ = _serve(small_platform, requests, journal_path=journal)
    second, _, _ = _serve(small_platform, requests, resume_path=journal)
    assert _outcome_dicts(first) == _outcome_dicts(second)


def _run_serve_cli(tmp_path, *extra):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(os.path.dirname(__file__), "..", "src")
    return subprocess.run(
        [sys.executable, "-m", "repro", "serve", "--scale", "smoke",
         "--tenants", "6", "--seed", "3", *extra],
        capture_output=True,
        text=True,
        env=env,
        timeout=300,
    )


@pytest.mark.slow
def test_kill_mid_serve_then_resume_bit_identical(tmp_path):
    # The real thing: a subprocess hard-killed (os._exit) mid-serve,
    # then resumed from its journal; the resumed outcomes must equal an
    # uninterrupted run's byte-for-byte.
    ref_out = tmp_path / "reference.json"
    res_out = tmp_path / "resumed.json"
    journal = tmp_path / "run.jsonl"

    reference = _run_serve_cli(tmp_path, "--outcome-out", str(ref_out))
    assert reference.returncode == 0, reference.stderr

    killed = _run_serve_cli(
        tmp_path,
        "--journal", str(journal),
        "--faults", "kill_after=5",
    )
    assert killed.returncode == KILL_EXIT_CODE
    assert journal.exists() and journal.stat().st_size > 0

    resumed = _run_serve_cli(
        tmp_path,
        "--resume", str(journal),
        "--faults", "kill_after=5",
        "--outcome-out", str(res_out),
    )
    assert resumed.returncode == 0, resumed.stderr
    assert json.loads(res_out.read_text()) == json.loads(ref_out.read_text())


@pytest.mark.slow
def test_crashed_journaled_cli_run_exits_3_with_recovery_hint(tmp_path):
    journal = tmp_path / "run.jsonl"
    crashed = _run_serve_cli(
        tmp_path,
        "--journal", str(journal),
        "--faults", "crash_after=3",
    )
    assert crashed.returncode == 3
    assert "--resume" in crashed.stderr
    assert str(journal) in crashed.stderr
