"""Tests for the classic structured DAG families and concurrency metrics."""

import numpy as np
import pytest

from repro.dag.classic import fft_dag, gaussian_elimination_dag, stencil_dag
from repro.dag.metrics import characteristics, concurrency_profile, max_concurrency
from repro.resources.collection import ResourceCollection
from repro.scheduling import schedule_dag, validate_schedule


def test_gauss_task_count():
    # k*(k+1)/2 - 1 tasks.
    for k in (2, 4, 7):
        d = gaussian_elimination_dag(k)
        assert d.n == k * (k + 1) // 2 - 1


def test_gauss_structure():
    d = gaussian_elimination_dag(5)
    # Height: alternating pivot/update waves -> 2*(k-1) levels.
    assert d.height == 2 * (5 - 1)
    # Width shrinks with each pivot step: first update wave is the widest.
    assert d.width == 5 - 1
    assert d.entry_nodes.size == 1  # the first pivot


def test_gauss_validation():
    with pytest.raises(ValueError):
        gaussian_elimination_dag(1)


def test_fft_shape():
    d = fft_dag(3)
    assert d.n == 4 * 8  # (k+1) levels of 2^k
    assert d.height == 4
    assert d.width == 8
    # Every non-input task has exactly two parents.
    non_entry = d.in_degree[d.in_degree > 0]
    assert np.all(non_entry == 2)


def test_fft_butterfly_partners():
    d = fft_dag(2)
    # Level-1 task i depends on level-0 tasks i and i^1.
    for i in range(4):
        parents = sorted(d.parents(4 + i).tolist())
        assert parents == sorted({i, i ^ 1})


def test_fft_validation():
    with pytest.raises(ValueError):
        fft_dag(0)


def test_stencil_shape():
    d = stencil_dag(width=6, depth=5)
    assert d.n == 30
    assert d.height == 5
    assert d.width == 6
    # Interior cells have 3 parents; border cells 2.
    row = d.in_degree[6:12]
    assert row[0] == 2 and row[-1] == 2
    assert np.all(row[1:-1] == 3)


def test_stencil_validation():
    with pytest.raises(ValueError):
        stencil_dag(0, 3)


@pytest.mark.parametrize(
    "dag",
    [gaussian_elimination_dag(5), fft_dag(3), stencil_dag(4, 4)],
    ids=["gauss", "fft", "stencil"],
)
def test_classic_dags_schedule_cleanly(dag):
    rc = ResourceCollection.homogeneous(6)
    for heuristic in ("mcp", "greedy", "fca"):
        s = schedule_dag(heuristic, dag, rc)
        assert validate_schedule(dag, rc, s) == []


def test_classic_ccr_targets():
    d = gaussian_elimination_dag(6, comp_cost=10.0, ccr=0.5)
    assert characteristics(d).ccr == pytest.approx(0.5)


# ----------------------------------------------------------------------
# Concurrency metrics
# ----------------------------------------------------------------------
def test_concurrency_profile_is_level_sizes(diamond_dag):
    assert list(concurrency_profile(diamond_dag)) == [1, 2, 1]


def test_max_concurrency_diamond(diamond_dag):
    assert max_concurrency(diamond_dag) == 2


def test_max_concurrency_chain():
    from repro.dag.workflows import chain_dag

    assert max_concurrency(chain_dag(10)) == 1


def test_max_concurrency_can_exceed_width():
    """Cross-level overlap: incomparable tasks in different levels."""
    from repro.dag.graph import dag_from_edges

    # 0 -> 1 -> 2 (slow chain) and 3 (independent, long task).
    d = dag_from_edges([1.0, 1.0, 1.0, 10.0], [(0, 1, 0), (1, 2, 0)])
    # Width (max level size) is 2, but 3 runs alongside the whole chain.
    assert max_concurrency(d) == 2
    # A case where overlap beats every level size:
    d2 = dag_from_edges(
        [5.0, 1.0, 1.0, 5.0],
        [(0, 1, 0.0), (2, 3, 0.0)],
    )
    assert max_concurrency(d2) >= 2
