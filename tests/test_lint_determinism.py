"""Tests for scripts/lint_determinism.py (the seeded-code hygiene gate)."""

import importlib.util
import sys
from pathlib import Path

import pytest

SCRIPT = Path(__file__).resolve().parent.parent / "scripts" / "lint_determinism.py"


@pytest.fixture(scope="module")
def det():
    spec = importlib.util.spec_from_file_location("lint_determinism", SCRIPT)
    module = importlib.util.module_from_spec(spec)
    # dataclasses resolves cls.__module__ through sys.modules at class
    # creation time, so the module must be registered before exec.
    sys.modules["lint_determinism"] = module
    spec.loader.exec_module(module)
    yield module
    sys.modules.pop("lint_determinism", None)


def _lint(det, tmp_path, source, name="mod.py"):
    path = tmp_path / name
    path.write_text(source)
    return det.lint_file(path)


def test_unseeded_default_rng_flagged(det, tmp_path):
    findings = _lint(det, tmp_path, "import numpy as np\nrng = np.random.default_rng()\n")
    assert [f.code for f in findings] == ["DET001"]


def test_seeded_default_rng_clean(det, tmp_path):
    findings = _lint(det, tmp_path, "import numpy as np\nrng = np.random.default_rng(42)\n")
    assert findings == []


def test_stdlib_random_import_and_call_flagged(det, tmp_path):
    findings = _lint(det, tmp_path, "import random\nx = random.random()\n")
    codes = [f.code for f in findings]
    assert codes == ["DET001", "DET001"]


def test_wall_clock_flagged_outside_observe(det, tmp_path):
    findings = _lint(det, tmp_path, "import time\nt = time.time()\n")
    assert [f.code for f in findings] == ["DET002"]


def test_wall_clock_allowed_in_observe(det, tmp_path):
    findings = _lint(det, tmp_path, "import time\nt = time.time()\n", name="observe.py")
    assert findings == []


def test_allow_comment_suppresses(det, tmp_path):
    findings = _lint(det, tmp_path, "import time\nt = time.time()  # lint: allow\n")
    assert findings == []


def test_set_iteration_flagged(det, tmp_path):
    findings = _lint(det, tmp_path, "for x in {1, 2, 3}:\n    print(x)\n")
    assert [f.code for f in findings] == ["DET003"]


def test_set_comprehension_source_flagged(det, tmp_path):
    findings = _lint(det, tmp_path, "ys = [y for y in set([3, 1])]\n")
    assert [f.code for f in findings] == ["DET003"]


def test_sorted_set_iteration_clean(det, tmp_path):
    # Wrapping in sorted() launders the hash-randomised order away.
    findings = _lint(det, tmp_path, "ys = sorted(y for y in set([3, 1]))\n")
    assert findings == []


def test_list_iteration_clean(det, tmp_path):
    findings = _lint(det, tmp_path, "for x in [1, 2]:\n    print(x)\n")
    assert findings == []


def test_asyncio_sleep_nonzero_delay_flagged(det, tmp_path):
    findings = _lint(det, tmp_path, "import asyncio\nasyncio.sleep(5)\n")
    assert [f.code for f in findings] == ["DET004"]


def test_asyncio_sleep_variable_delay_flagged(det, tmp_path):
    # A variable delay can't be proven zero, so it counts as wall time.
    src = "import asyncio\nasync def f(d):\n    await asyncio.sleep(d)\n"
    findings = _lint(det, tmp_path, src)
    assert [f.code for f in findings] == ["DET004"]


def test_asyncio_sleep_zero_is_clean(det, tmp_path):
    # asyncio.sleep(0) is a pure yield point, not a wall-clock wait.
    src = "import asyncio\nasync def f():\n    await asyncio.sleep(0)\n"
    assert _lint(det, tmp_path, src) == []


def test_loop_time_flagged_as_wall_clock(det, tmp_path):
    src = (
        "import asyncio\n"
        "loop = asyncio.get_event_loop()\n"
        "t = loop.time()\n"
    )
    findings = _lint(det, tmp_path, src)
    assert [f.code for f in findings] == ["DET002"]


def test_loop_time_allowed_in_observe(det, tmp_path):
    src = (
        "import asyncio\n"
        "loop = asyncio.get_event_loop()\n"
        "t = loop.time()\n"
    )
    assert _lint(det, tmp_path, src, name="observe.py") == []


def test_syntax_error_is_det000(det, tmp_path):
    findings = _lint(det, tmp_path, "def broken(:\n")
    assert [f.code for f in findings] == ["DET000"]


def test_bare_write_text_flagged(det, tmp_path):
    src = "from pathlib import Path\nPath('out.json').write_text('{}')\n"
    findings = _lint(det, tmp_path, src)
    assert [f.code for f in findings] == ["DET005"]


def test_bare_json_dump_flagged(det, tmp_path):
    src = "import json\nwith open('out.json', 'w') as fh:\n    json.dump({}, fh)\n"
    findings = _lint(det, tmp_path, src)
    assert [f.code for f in findings] == ["DET005"]


def test_json_dumps_is_clean(det, tmp_path):
    # dumps returns a string — no file is written, nothing to tear.
    assert _lint(det, tmp_path, "import json\ns = json.dumps({})\n") == []


def test_write_text_allowed_in_durability(det, tmp_path):
    src = "from pathlib import Path\nPath('x').write_text('y')\n"
    assert _lint(det, tmp_path, src, name="durability.py") == []


def test_write_text_allow_comment_suppresses(det, tmp_path):
    src = "from pathlib import Path\nPath('x').write_text('y')  # lint: allow\n"
    assert _lint(det, tmp_path, src) == []


def test_id_dict_key_flagged(det, tmp_path):
    findings = _lint(det, tmp_path, "cache = {}\ncache[id(obj)] = 1\n")
    assert [f.code for f in findings] == ["DET006"]


def test_id_tuple_key_flagged(det, tmp_path):
    findings = _lint(det, tmp_path, "key = (id(dag), name)\n")
    assert [f.code for f in findings] == ["DET006"]


def test_sort_key_id_flagged(det, tmp_path):
    findings = _lint(det, tmp_path, "out = sorted(items, key=id)\n")
    assert [f.code for f in findings] == ["DET006"]


def test_sort_method_key_id_flagged(det, tmp_path):
    findings = _lint(det, tmp_path, "items.sort(key=id)\n")
    assert [f.code for f in findings] == ["DET006"]


def test_id_allow_comment_suppresses(det, tmp_path):
    src = "key = (id(dag), name)  # lint: allow DET006 (in-process cache)\n"
    assert _lint(det, tmp_path, src) == []


def test_shadowed_id_attribute_clean(det, tmp_path):
    # obj.id(...) is a method named id, not the builtin — stays clean.
    findings = _lint(det, tmp_path, "x = record.id()\nkey = row.id\n")
    assert findings == []


def test_repo_tree_is_clean(det):
    # The real gate: src/repro must carry no unsuppressed findings.
    root = SCRIPT.parent.parent / "src" / "repro"
    findings = det.lint_tree(root)
    assert findings == [], "\n".join(f.format() for f in findings)


def test_finding_format_is_clickable(det, tmp_path):
    [f] = _lint(det, tmp_path, "import time\nt = time.time()\n")
    assert f.format().startswith(str(tmp_path))
    assert ":2: DET002" in f.format()
