"""Tests for the platform-aware satisfiability preflight."""

import dataclasses

import pytest

from repro.analysis.preflight import (
    cluster_ads,
    preflight_constraint,
    preflight_document,
    preflight_specification,
)
from repro.core.generator import ResourceSpecification
from repro.experiments.chapter4 import build_universe
from repro.experiments.scales import SMOKE
from repro.selection.classad.parser import parse_expression


@pytest.fixture(scope="module")
def platform():
    return build_universe(SMOKE, seed=0)


@pytest.fixture(scope="module")
def spec():
    return ResourceSpecification(
        heuristic="mcp",
        size=24,
        min_size=20,
        clock_min_mhz=2000.0,
        clock_max_mhz=4000.0,
        connectivity="loose",
        threshold=0.001,
        dag_name="montage",
    )


def test_cluster_ads_cover_every_host(platform):
    ads = cluster_ads(platform)
    assert sum(n for _, n in ads) == platform.n_hosts
    # Every cluster ad advertises the attributes requests actually use.
    for ad, _ in ads:
        for name in ("Type", "Clock", "Memory", "OpSys", "Nodes"):
            assert name in ad


def test_satisfiable_constraint_reports_matching_hosts(platform):
    result = preflight_constraint(parse_expression("Clock >= 2000"), platform)
    assert result.satisfiable
    assert 0 < result.matching_hosts <= platform.n_hosts
    assert result.eliminating_clause is None
    assert result.trace  # clause-by-clause survivor counts recorded


def test_impossible_clause_named_as_eliminator(platform):
    expr = parse_expression('Type == "Machine" && Clock >= 99999')
    result = preflight_constraint(expr, platform)
    assert not result.satisfiable
    assert result.matching_hosts == 0
    assert "Clock >= 99999" in result.eliminating_clause
    assert result.report.codes() == ["SPEC201"]
    # The trace shows full survival until the killer clause.
    assert result.trace[0][1] == platform.n_hosts
    assert result.trace[-1][1] == 0


def test_capacity_shortfall_is_spec202(platform):
    result = preflight_constraint(
        parse_expression("Clock >= 2000"), platform, min_hosts=platform.n_hosts + 1
    )
    assert not result.satisfiable
    assert result.report.codes() == ["SPEC202"]


def test_preflight_specification_satisfiable(platform, spec):
    result = preflight_specification(spec, platform)
    assert result.satisfiable
    assert result.required_hosts == spec.min_size


def test_preflight_specification_impossible_clock(platform, spec):
    fast = dataclasses.replace(spec, clock_min_mhz=99999.0, clock_max_mhz=99999.0)
    result = preflight_specification(fast, platform)
    assert not result.satisfiable
    assert result.report.has_errors
    assert "99999" in result.eliminating_clause


def test_preflight_specification_oversize(platform, spec):
    big = dataclasses.replace(
        spec, size=platform.n_hosts + 50, min_size=platform.n_hosts + 10
    )
    result = preflight_specification(big, platform)
    assert not result.satisfiable
    assert result.report.codes() == ["SPEC202"]


@pytest.mark.parametrize("lang", ["vgdl", "classad", "sword"])
def test_preflight_document_satisfiable_for_rendered_spec(platform, spec, lang):
    text = {
        "vgdl": spec.to_vgdl,
        "classad": spec.to_classad,
        "sword": spec.to_sword_xml,
    }[lang]()
    result = preflight_document(text, platform, lang)
    assert result.satisfiable, result.describe()
    assert result.matching_hosts > 0


@pytest.mark.parametrize("lang", ["vgdl", "classad", "sword"])
def test_preflight_document_impossible_clock(platform, spec, lang):
    fast = dataclasses.replace(spec, clock_min_mhz=99999.0, clock_max_mhz=99999.0)
    text = {
        "vgdl": fast.to_vgdl,
        "classad": fast.to_classad,
        "sword": fast.to_sword_xml,
    }[lang]()
    result = preflight_document(text, platform, lang)
    assert not result.satisfiable
    assert result.report.has_errors


def test_preflight_is_deterministic(platform, spec):
    a = preflight_specification(spec, platform)
    b = preflight_specification(spec, platform)
    assert a.matching_hosts == b.matching_hosts
    assert a.trace == b.trace
