"""Tests for the replay simulator and the schedule validator."""

import numpy as np
import pytest

from repro.dag.graph import dag_from_edges
from repro.scheduling import replay_schedule, schedule_dag, validate_schedule
from repro.scheduling.base import Schedule
from repro.resources.collection import ResourceCollection


def test_replay_rejects_foreign_schedule(diamond_dag, rc8):
    s = schedule_dag("mcp", diamond_dag, rc8)
    bad = Schedule(
        heuristic="x",
        host=s.host[:2],
        start=s.start[:2],
        finish=s.finish[:2],
        ops=0,
        n_hosts=8,
    )
    with pytest.raises(ValueError):
        replay_schedule(diamond_dag, rc8, bad)


def test_replay_rejects_out_of_range_host(diamond_dag, rc8):
    s = schedule_dag("mcp", diamond_dag, rc8)
    tampered = Schedule("x", s.host.copy(), s.start, s.finish, 0, 8)
    tampered.host[0] = 99
    with pytest.raises(ValueError):
        replay_schedule(diamond_dag, rc8, tampered)


def test_validator_detects_duration_tampering(diamond_dag, rc8):
    s = schedule_dag("mcp", diamond_dag, rc8)
    s.finish[1] += 5.0
    problems = validate_schedule(diamond_dag, rc8, s)
    assert any("duration" in p for p in problems)


def test_validator_detects_dependency_violation(diamond_dag, rc8):
    s = schedule_dag("mcp", diamond_dag, rc8)
    # Make the exit task start before its parents finish.
    s.start[3] = 0.0
    s.finish[3] = s.start[3] + diamond_dag.comp[3]
    problems = validate_schedule(diamond_dag, rc8, s)
    assert any("before data" in p for p in problems)


def test_validator_detects_host_overlap():
    dag = dag_from_edges([5.0, 5.0], [])
    rc = ResourceCollection.homogeneous(1)
    s = Schedule(
        heuristic="x",
        host=np.array([0, 0]),
        start=np.array([0.0, 2.0]),
        finish=np.array([5.0, 7.0]),
        ops=0,
        n_hosts=1,
    )
    problems = validate_schedule(dag, rc, s)
    assert any("overlap" in p for p in problems)


def test_validator_accepts_valid(diamond_dag, rc8):
    s = schedule_dag("greedy", diamond_dag, rc8)
    assert validate_schedule(diamond_dag, rc8, s) == []


def test_replay_recovers_from_padded_times(diamond_dag, rc8):
    """Replay tightens artificially delayed (but ordered) schedules."""
    s = schedule_dag("mcp", diamond_dag, rc8)
    padded = Schedule("x", s.host.copy(), s.start + 100.0, s.finish + 100.0, 0, 8)
    r = replay_schedule(diamond_dag, rc8, padded)
    np.testing.assert_allclose(r.start, s.start, atol=1e-9)


def test_replay_preserves_host_assignment(medium_dag, rc8):
    s = schedule_dag("fca", medium_dag, rc8)
    r = replay_schedule(medium_dag, rc8, s)
    assert np.array_equal(r.host, s.host)
    assert r.heuristic.endswith("+replay")
