"""Tests for the seeded resource-churn state machine."""

import numpy as np
import pytest

from repro.resources.binding import Binder
from repro.resources.churn import (
    ChurnConfig,
    ChurnEvent,
    ChurnTrace,
    ResourceChurn,
    generate_churn_trace,
    parse_churn_spec,
)

_CFG = ChurnConfig(fail_rate=0.01, competitor_rate=0.02, utilization=0.2, seed=5)


def test_event_validation():
    with pytest.raises(ValueError):
        ChurnEvent(1.0, "explode", (0,))
    with pytest.raises(ValueError):
        ChurnEvent(-1.0, "fail", (0,))


def test_config_validation():
    with pytest.raises(ValueError):
        ChurnConfig(fail_rate=-0.1)
    with pytest.raises(ValueError):
        ChurnConfig(utilization=1.5)
    with pytest.raises(ValueError):
        ChurnConfig(competitor_size=0)
    with pytest.raises(ValueError):
        ChurnConfig(horizon_s=0.0)


def test_trace_requires_sorted_events():
    with pytest.raises(ValueError):
        ChurnTrace(events=(ChurnEvent(5.0, "fail", (0,)), ChurnEvent(1.0, "fail", (1,))))


def test_trace_is_deterministic(small_platform):
    t1 = generate_churn_trace(small_platform, _CFG)
    t2 = generate_churn_trace(small_platform, _CFG)
    assert t1.events == t2.events
    assert t1.busy_hosts == t2.busy_hosts
    t3 = generate_churn_trace(small_platform, _CFG.with_seed(6))
    assert t3.events != t1.events


def test_fail_join_and_bind_release_pairing(small_platform):
    cfg = ChurnConfig(
        fail_rate=0.01, rejoin_s=50.0, competitor_rate=0.02, competitor_hold_s=80.0, seed=1
    )
    trace = generate_churn_trace(small_platform, cfg)
    by_ref: dict[int, list[ChurnEvent]] = {}
    for e in trace.events:
        by_ref.setdefault(e.ref, []).append(e)
    kinds = {e.kind for e in trace.events}
    assert {"fail", "join", "bind", "release"} <= kinds
    for ref, events in by_ref.items():
        if events[0].kind == "fail":
            fail, join = events
            assert join.kind == "join"
            assert join.hosts == fail.hosts
            assert join.time == pytest.approx(fail.time + 50.0)
        elif events[0].kind == "bind":
            bind, release = events
            assert release.kind == "release"
            assert release.hosts == bind.hosts
            assert release.time == pytest.approx(bind.time + 80.0)
            # Competitors grab a block from a single cluster.
            clusters = {int(small_platform.host_cluster[h]) for h in bind.hosts}
            assert len(clusters) == 1


def test_competitor_block_respects_cluster_size(small_platform):
    cfg = ChurnConfig(competitor_rate=0.05, competitor_size=10_000, seed=2)
    trace = generate_churn_trace(small_platform, cfg)
    for e in trace.events:
        if e.kind == "bind":
            cid = int(small_platform.host_cluster[e.hosts[0]])
            members = int((small_platform.host_cluster == cid).sum())
            assert len(e.hosts) == members


def test_background_utilization(small_platform):
    trace = generate_churn_trace(small_platform, ChurnConfig(utilization=0.3, seed=3))
    frac = len(trace.busy_hosts) / small_platform.n_hosts
    assert 0.1 < frac < 0.5
    assert generate_churn_trace(small_platform, ChurnConfig()).busy_hosts == frozenset()


def test_advance_applies_state_transitions(small_platform):
    binder = Binder(small_platform)
    trace = ChurnTrace(
        events=(
            ChurnEvent(10.0, "fail", (0,), ref=0),
            ChurnEvent(20.0, "bind", (1, 2), ref=1),
            ChurnEvent(30.0, "release", (1, 2), ref=1),
            ChurnEvent(60.0, "join", (0,), ref=0),
        ),
        busy_hosts=frozenset({5}),
    )
    churn = ResourceChurn(small_platform, trace, binder)
    binder.bind(np.array([0], dtype=np.int64))  # ours, until host 0 dies

    applied = churn.advance(10.0)
    assert [e.kind for e in applied] == ["fail"]
    assert churn.dead == {0}
    assert not binder.is_bound(0)  # failure releases our binding
    assert churn.unavailable() == {0, 5}

    churn.advance(20.0)
    assert binder.is_bound(1) and binder.is_bound(2)
    assert churn.competitor_held == {1, 2}

    churn.advance(60.0)
    assert churn.dead == set()
    assert not binder.is_bound(1) and not binder.is_bound(2)
    assert churn.competitor_held == set()


def test_competitor_bind_skips_unfree_hosts(small_platform):
    binder = Binder(small_platform)
    binder.bind(np.array([1], dtype=np.int64))
    trace = ChurnTrace(events=(ChurnEvent(1.0, "bind", (1, 2), ref=0),))
    churn = ResourceChurn(small_platform, trace, binder)
    churn.advance(1.0)
    # The competitor only gets the free host; ours stays ours.
    assert churn.competitor_held == {2}
    assert binder.is_bound(1)


def test_advance_backwards_rejected(small_platform):
    churn = ResourceChurn.from_config(small_platform, ChurnConfig())
    churn.advance(5.0)
    with pytest.raises(ValueError):
        churn.advance(4.0)


def test_next_failure_window(small_platform):
    trace = ChurnTrace(
        events=(ChurnEvent(10.0, "fail", (3,), ref=0), ChurnEvent(50.0, "fail", (4,), ref=1))
    )
    churn = ResourceChurn(small_platform, trace, Binder(small_platform))
    hit = churn.next_failure({3, 4}, until=100.0)
    assert hit is not None and hit.time == 10.0
    assert churn.next_failure({4}, until=20.0) is None  # outside window
    assert churn.next_failure({9}, until=100.0) is None  # not our host
    churn.advance(10.0)
    late = churn.next_failure({3, 4}, until=100.0)
    assert late is not None and late.time == 50.0  # already-applied events skipped


def test_parse_churn_spec_roundtrip():
    cfg = parse_churn_spec("fail=0.002,competitor=0.01,hold=300,size=8,rejoin=600,util=0.2,seed=7")
    assert cfg == ChurnConfig(
        fail_rate=0.002,
        rejoin_s=600.0,
        competitor_rate=0.01,
        competitor_size=8,
        competitor_hold_s=300.0,
        utilization=0.2,
        seed=7,
    )
    assert parse_churn_spec("") == ChurnConfig()
    with pytest.raises(ValueError, match="'frequency'.*accepted keys"):
        parse_churn_spec("frequency=2")
    with pytest.raises(ValueError, match="bad value"):
        parse_churn_spec("fail=often")
