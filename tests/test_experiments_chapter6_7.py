"""Tests for the Chapter VI and VII experiment harnesses."""

import pytest

from repro.core.heuristic_model import HeuristicPredictionModel
from repro.core.size_model import ObservationGrid
from repro.experiments import chapter6 as c6
from repro.experiments import chapter7 as c7
from repro.experiments.scales import SMOKE

H_GRID = ObservationGrid(
    sizes=(40, 120),
    ccrs=(0.05,),
    parallelisms=(0.4, 0.8),
    regularities=(0.5,),
    instances=1,
)


@pytest.fixture(scope="module")
def h_model():
    return HeuristicPredictionModel.train(H_GRID, heuristics=("mcp", "fca", "fcfs"), seed=0)


def test_heuristic_turnaround_table(h_model):
    rows = c6.heuristic_turnaround_table(h_model)
    assert [r["dag_size"] for r in rows] == [40, 120]
    for r in rows:
        assert r["winner"] in ("mcp", "fca", "fcfs")
        assert r["mcp_turnaround_s"] > 0


def test_decision_surface(h_model):
    rows = c6.decision_surface(h_model)
    assert len(rows) == 2  # 2 sizes x 1 ccr
    assert all(r["winner"] in h_model.heuristics for r in rows)


def test_validate_combined_models(tiny_size_model, h_model):
    points = [(60, 0.05, 0.5, 0.5), (100, 0.05, 0.7, 0.5)]
    rows, summary = c6.validate_combined_models(
        tiny_size_model, h_model, SMOKE, points=points, heuristics=("mcp", "fca", "fcfs")
    )
    assert len(rows) == 2
    assert summary["points"] == 2
    assert summary["correct"] + summary["near"] + summary["wrong"] == 2
    assert summary["mean_degradation_pct"] < 50


def test_generate_montage_specs_end_to_end(tiny_size_model, h_model):
    result = c7.generate_montage_specs(tiny_size_model, h_model, SMOKE)
    spec = result["spec"]
    assert spec.size >= 1
    # Each engine accepted the generated document and returned hosts.
    assert result["vg_hosts"] >= spec.min_size
    assert result["sword_hosts"] in (0, spec.size)
    assert "TightBagOf" in result["vgdl_text"] or "LooseBagOf" in result["vgdl_text"]
    assert "<request>" in result["sword_text"]
    assert "Ports" in result["classad_text"]


def test_clock_size_surface_rows():
    rows = c7.clock_size_surface(SMOKE, clocks_ghz=(2.0, 3.0), size=60)
    clocks = {r["clock_ghz"] for r in rows}
    assert clocks == {2.0, 3.0}
    # Faster clock dominates at every size.
    by_size = {}
    for r in rows:
        by_size.setdefault(r["rc_size"], {})[r["clock_ghz"]] = r["turnaround_s"]
    for size, vals in by_size.items():
        assert vals[3.0] <= vals[2.0] + 1e-6


def test_relative_size_threshold_rows():
    rows = c7.relative_size_threshold(SMOKE, sizes=(4, 8))
    assert len(rows) == 2
    for r in rows:
        assert r["slow_size_needed"] == "unreachable" or r["slow_size_needed"] >= r["fast_rc_size"]


def test_alternatives_demo(tiny_size_model):
    rows = c7.alternatives_demo(tiny_size_model, SMOKE, available_clocks_ghz=(3.0, 2.0))
    assert rows[0]["note"] == "original (unfulfilled)"
    assert len(rows) == 3
    # Alternatives are at lower clock rates with (weakly) more hosts.
    for r in rows[1:]:
        assert r["clock_ghz"] < rows[0]["clock_ghz"]
