"""Tests for the SWORD XML query language and engine."""

import numpy as np
import pytest

from repro.selection.sword import (
    CategoricalRequirement,
    NumericRequirement,
    SwordEngine,
    SwordError,
    parse_sword_query,
)

FIG_II4 = """
<request>
  <dist_query_budget>30</dist_query_budget>
  <optimizer_budget>100</optimizer_budget>
  <group>
    <name>Cluster_NA</name>
    <num_machines>5</num_machines>
    <cpu_load>0.5, 0.1, 0.1, 0.0, 0.0</cpu_load>
    <free_mem>256.0, 512.0, MAX, MAX, 100.0</free_mem>
    <free_disk>500.0, 1000.0, MAX, MAX, 5.0</free_disk>
    <latency>0.0, 0.0, 10.0, 20.0, 0.5</latency>
    <os><value>Linux, 0.0</value></os>
    <network_coordinate_center><value>North_America, 0.0</value></network_coordinate_center>
  </group>
  <group>
    <name>Cluster_Europe</name>
    <num_machines>5</num_machines>
    <cpu_load>0.5, 0.1, 0.1, 0.0, 0.0</cpu_load>
    <free_mem>256.0, 512.0, MAX, MAX, 100.0</free_mem>
    <latency>0.0, 0.0, 10.0, 20.0, 0.5</latency>
    <os><value>Linux, 0.0</value></os>
    <network_coordinate_center><value>Europe, 0.0</value></network_coordinate_center>
  </group>
  <constraint>
    <group_names>Cluster_NA Cluster_Europe</group_names>
    <latency>0.0, 0.0, 50.0, 100.0, 0.5</latency>
  </constraint>
</request>
"""


def test_parse_fig_ii4():
    q = parse_sword_query(FIG_II4)
    assert q.dist_query_budget == 30
    assert q.optimizer_budget == 100
    assert len(q.groups) == 2
    assert q.groups[0].name == "Cluster_NA"
    assert q.groups[0].num_machines == 5
    assert len(q.constraints) == 1
    assert q.constraints[0].group_names == ("Cluster_NA", "Cluster_Europe")


def test_numeric_requirement_ascending():
    r = NumericRequirement.from_text("free_mem", "256.0, 512.0, MAX, MAX, 100.0")
    assert r.required_lo == 256.0
    assert r.desired_lo == 512.0
    assert r.required_hi == np.inf
    assert r.rate == 100.0


def test_numeric_requirement_descending_reversed():
    r = NumericRequirement.from_text("cpu_load", "0.5, 0.1, 0.1, 0.0, 0.0")
    assert r.required_lo == 0.0
    assert r.desired_lo == 0.1
    assert r.desired_hi == 0.1
    assert r.required_hi == 0.5


def test_numeric_feasible_and_penalty():
    r = NumericRequirement.from_text("free_mem", "256, 512, 1024, 2048, 2.0")
    v = np.array([100.0, 300.0, 700.0, 1500.0, 3000.0])
    feas = r.feasible(v)
    assert list(feas) == [False, True, True, True, False]
    pen = r.penalty(v)
    assert pen[1] == pytest.approx(2.0 * (512 - 300))
    assert pen[2] == 0.0
    assert pen[3] == pytest.approx(2.0 * (1500 - 1024))


def test_numeric_requirement_bad_arity():
    with pytest.raises(SwordError):
        NumericRequirement.from_text("free_mem", "1, 2, 3")


def test_numeric_requirement_non_nesting():
    with pytest.raises(SwordError):
        NumericRequirement.from_text("x", "0, 5, 2, 10, 1")


def test_categorical_requirement():
    r = CategoricalRequirement.from_text("os", "Linux, 0.0")
    assert r.value == "Linux"
    assert r.penalty_rate == 0.0
    r2 = CategoricalRequirement.from_text("os", "Linux")
    assert r2.penalty_rate == 0.0


def test_parse_errors():
    with pytest.raises(SwordError):
        parse_sword_query("<notrequest/>")
    with pytest.raises(SwordError):
        parse_sword_query("<request></request>")  # no groups
    with pytest.raises(SwordError):
        parse_sword_query(
            "<request><group><name>g</name></group></request>"
        )  # missing num_machines
    with pytest.raises(SwordError):
        parse_sword_query("not xml at all <<<")
    with pytest.raises(SwordError):
        parse_sword_query(
            "<request><group><name>g</name><num_machines>1</num_machines>"
            "<weird>1</weird></group></request>"
        )


def test_duplicate_group_names_rejected():
    q = (
        "<request>"
        "<group><name>g</name><num_machines>1</num_machines></group>"
        "<group><name>g</name><num_machines>1</num_machines></group>"
        "</request>"
    )
    with pytest.raises(SwordError):
        parse_sword_query(q)


def test_constraint_unknown_group_rejected():
    q = (
        "<request>"
        "<group><name>g</name><num_machines>1</num_machines></group>"
        "<constraint><group_names>g h</group_names>"
        "<latency>0,0,10,20,1</latency></constraint>"
        "</request>"
    )
    with pytest.raises(SwordError):
        parse_sword_query(q)


# ----------------------------------------------------------------------
# Engine
# ----------------------------------------------------------------------
def _simple_query(n=4, clock_min=1000.0):
    return f"""
    <request>
      <group>
        <name>workers</name>
        <num_machines>{n}</num_machines>
        <clock>{clock_min}, {clock_min}, MAX, MAX, 0.01</clock>
        <os><value>LINUX, 10.0</value></os>
      </group>
    </request>
    """


def test_engine_simple_group(small_platform):
    res = SwordEngine(small_platform).query(_simple_query(6))
    assert res is not None
    assert res.hosts["workers"].size == 6


def test_engine_infeasible(small_platform):
    res = SwordEngine(small_platform).query(_simple_query(4, clock_min=99999.0))
    assert res is None


def test_engine_prefers_lower_penalty(small_platform):
    """Desired clock = fastest: the optimizer should pick fast clusters."""
    fastest = max(c.clock_ghz for c in small_platform.clusters) * 1000
    q = f"""
    <request>
      <group>
        <name>g</name>
        <num_machines>2</num_machines>
        <clock>1000, {fastest}, MAX, MAX, 1.0</clock>
      </group>
    </request>
    """
    res = SwordEngine(small_platform).query(q)
    assert res is not None
    hosts = res.hosts["g"]
    clocks = small_platform.host_clock[hosts] * 1000
    assert np.all(clocks == fastest)
    assert res.penalty == pytest.approx(0.0)


def test_engine_tight_latency_single_cluster(small_platform):
    q = """
    <request>
      <group>
        <name>g</name>
        <num_machines>3</num_machines>
        <latency>0.0, 0.0, 1.0, 1.0, 0.5</latency>
      </group>
    </request>
    """
    res = SwordEngine(small_platform).query(q)
    assert res is not None
    clusters = np.unique(small_platform.host_cluster[res.hosts["g"]])
    assert clusters.size == 1  # <=1 ms requires a single cluster


def test_engine_two_groups_disjoint(small_platform):
    q = """
    <request>
      <group><name>a</name><num_machines>3</num_machines></group>
      <group><name>b</name><num_machines>3</num_machines></group>
    </request>
    """
    res = SwordEngine(small_platform).query(q)
    assert res is not None
    assert not set(res.hosts["a"].tolist()) & set(res.hosts["b"].tolist())


def test_engine_fig_ii4_runs(small_platform):
    # Regions present on the platform depend on its domains; the full
    # Fig. II-4 query either resolves or correctly reports infeasibility.
    res = SwordEngine(small_platform).query(FIG_II4)
    if res is not None:
        assert set(res.hosts) == {"Cluster_NA", "Cluster_Europe"}
        assert all(v.size == 5 for v in res.hosts.values())


def test_optimizer_budget_limits_search(small_platform):
    q = """
    <request>
      <optimizer_budget>1</optimizer_budget>
      <group><name>a</name><num_machines>1</num_machines></group>
      <group><name>b</name><num_machines>1</num_machines></group>
    </request>
    """
    res = SwordEngine(small_platform).query(q)
    # With budget 1 only a single combination is examined; it may or may not
    # be feasible but must not crash.
    assert res is None or res.penalty >= 0
