"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.size_model import ObservationGrid, SizePredictionModel, build_observation_knees
from repro.dag.graph import DAG, dag_from_edges
from repro.dag.montage import montage_dag, montage_level_counts
from repro.dag.random_dag import RandomDagSpec, generate_random_dag
from repro.resources.collection import ResourceCollection
from repro.resources.generator import ResourceGeneratorConfig
from repro.resources.platform import PlatformConfig, generate_platform


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(42)


@pytest.fixture
def diamond_dag() -> DAG:
    """entry -> {a, b} -> exit with distinct costs."""
    return dag_from_edges(
        comp=[4.0, 3.0, 5.0, 2.0],
        edges=[(0, 1, 1.0), (0, 2, 2.0), (1, 3, 1.5), (2, 3, 0.5)],
        name="diamond",
    )


@pytest.fixture
def medium_dag(rng: np.random.Generator) -> DAG:
    return generate_random_dag(
        RandomDagSpec(size=200, ccr=0.3, parallelism=0.6, regularity=0.5, density=0.4),
        rng,
    )


@pytest.fixture
def small_montage() -> DAG:
    return montage_dag(montage_level_counts(20), ccr=0.01)


@pytest.fixture
def rc8() -> ResourceCollection:
    return ResourceCollection.homogeneous(8)


@pytest.fixture
def het_rc(rng: np.random.Generator) -> ResourceCollection:
    return ResourceCollection.heterogeneous_clock(8, 0.4, rng)


@pytest.fixture
def networked_rc() -> ResourceCollection:
    """Two clusters of 4 hosts; inter-cluster factor 8, intra 1."""
    factor = np.array([[1.0, 8.0], [8.0, 1.0]])
    return ResourceCollection(
        speed=np.ones(8),
        cluster=np.array([0, 0, 0, 0, 1, 1, 1, 1]),
        comm_factor=factor,
    )


@pytest.fixture(scope="session")
def small_platform():
    rng = np.random.default_rng(7)
    return generate_platform(
        PlatformConfig(resources=ResourceGeneratorConfig(n_clusters=25)), rng
    )


TINY_GRID = ObservationGrid(
    sizes=(40, 120),
    ccrs=(0.01, 0.5),
    parallelisms=(0.4, 0.7),
    regularities=(0.1, 0.8),
    instances=1,
    thresholds=(0.001, 0.05),
)


@pytest.fixture(scope="session")
def tiny_size_model() -> SizePredictionModel:
    knees = build_observation_knees(TINY_GRID, seed=0)
    return SizePredictionModel.fit(TINY_GRID, knees)
