"""End-to-end run of ``scripts/bench_parallel.py`` (slow; run with
``pytest -m slow``).  Tier-1 only checks the script parses."""

from __future__ import annotations

import ast
import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
SCRIPT = REPO / "scripts" / "bench_parallel.py"


def test_bench_script_parses():
    ast.parse(SCRIPT.read_text())


@pytest.mark.slow
def test_bench_script_produces_report(tmp_path):
    out = tmp_path / "BENCH_parallel.json"
    env = dict(os.environ, PYTHONPATH=str(REPO / "src"))
    subprocess.run(
        [sys.executable, str(SCRIPT), "--scale", "smoke", "--jobs", "2", "--output", str(out)],
        check=True,
        env=env,
        cwd=tmp_path,
        timeout=540,
    )
    report = json.loads(out.read_text())
    assert report["identical_output"] is True
    assert report["serial_seconds"] > 0 and report["parallel_seconds"] > 0
    assert report["cpu_count"] == os.cpu_count()
    # Provenance: the report must say which tree produced it and when.
    assert report["git_sha"] not in ("", None)
    assert report["timestamp_utc"].endswith("Z")
