"""Tests for alternative specification generation (Chapter VII)."""

import numpy as np
import pytest

from repro.core.alternatives import (
    alternative_specifications,
    clock_size_tradeoff,
    size_to_match,
)
from repro.core.generator import ResourceSpecificationGenerator
from repro.core.knee import TurnaroundCurve
from repro.dag.montage import montage_dag, montage_level_counts


def _curve(sizes, turn):
    t = np.asarray(turn, dtype=float)
    return TurnaroundCurve(np.asarray(sizes), t, t, np.zeros_like(t), "mcp")


def test_size_to_match():
    c = _curve([1, 2, 4, 8], [100.0, 60.0, 30.0, 29.0])
    assert size_to_match(c, 50.0) == 4
    assert size_to_match(c, 100.0) == 1
    assert size_to_match(c, 10.0) is None


def test_clock_size_tradeoff_shapes(small_montage):
    points = clock_size_tradeoff(small_montage, (2.0, 3.0), max_size=24, step_frac=0.5)
    clocks = {p.clock_ghz for p in points}
    assert clocks == {2.0, 3.0}
    by_clock = {c: [p for p in points if p.clock_ghz == c] for c in clocks}
    # Same size grid per clock.
    assert len(by_clock[2.0]) == len(by_clock[3.0])
    # Faster clocks dominate at equal size.
    for p2, p3 in zip(by_clock[2.0], by_clock[3.0]):
        assert p2.size == p3.size
        assert p3.turnaround <= p2.turnaround + 1e-9


def test_faster_clock_needs_fewer_hosts(small_montage):
    points = clock_size_tradeoff(small_montage, (2.0, 3.5), max_size=32, step_frac=0.3)
    slow = _points_to_curve(points, 2.0)
    fast = _points_to_curve(points, 3.5)
    target = slow.turnaround.min() * 1.02
    s_slow = size_to_match(slow, target)
    s_fast = size_to_match(fast, target)
    assert s_fast is not None and s_slow is not None
    assert s_fast <= s_slow


def _points_to_curve(points, clock):
    sel = sorted((p.size, p.turnaround) for p in points if p.clock_ghz == clock)
    sizes = np.array([s for s, _ in sel])
    turn = np.array([t for _, t in sel])
    return TurnaroundCurve(sizes, turn, turn, np.zeros_like(turn), "mcp")


def test_alternatives_ranked_by_turnaround(tiny_size_model):
    dag = montage_dag(montage_level_counts(15), ccr=0.01)
    gen = ResourceSpecificationGenerator(tiny_size_model, target_clock_ghz=3.5)
    spec = gen.generate(dag)
    alts = alternative_specifications(dag, spec, (3.0, 2.4, 2.0), max_size=80)
    assert len(alts) == 3
    turns = [t for _, t in alts]
    assert turns == sorted(turns)
    # All alternatives are at or below the requested clock.
    for alt, _ in alts:
        assert alt.clock_max_mhz <= spec.clock_max_mhz


def test_alternatives_skip_faster_clocks(tiny_size_model):
    dag = montage_dag(montage_level_counts(15), ccr=0.01)
    gen = ResourceSpecificationGenerator(tiny_size_model, target_clock_ghz=2.0)
    spec = gen.generate(dag)
    alts = alternative_specifications(dag, spec, (3.5, 1.5), max_size=60)
    assert len(alts) == 1
    assert alts[0][0].clock_max_mhz == pytest.approx(1500.0)


def test_alternatives_offer_faster_bands_when_nothing_slower(tiny_size_model):
    # Regression: asking for 3.0 GHz in an environment that only has faster
    # bands used to return [] — a faster band trivially fulfills the
    # request and must be offered, capped at the original RC size.
    dag = montage_dag(montage_level_counts(15), ccr=0.01)
    gen = ResourceSpecificationGenerator(tiny_size_model, target_clock_ghz=3.0)
    spec = gen.generate(dag)
    alts = alternative_specifications(dag, spec, (3.6, 3.3), max_size=60)
    assert len(alts) == 2
    for alt, turn in alts:
        assert alt.clock_max_mhz > spec.clock_max_mhz
        assert alt.size <= spec.size
        assert alt.min_size <= alt.size
        assert turn > 0
    turns = [t for _, t in alts]
    assert turns == sorted(turns)


def test_alternatives_still_prefer_degrading_when_possible(tiny_size_model):
    # With at least one band at-or-below the request, faster bands stay
    # excluded (the Fig. VII-6 degradation axis).
    dag = montage_dag(montage_level_counts(15), ccr=0.01)
    gen = ResourceSpecificationGenerator(tiny_size_model, target_clock_ghz=3.0)
    spec = gen.generate(dag)
    alts = alternative_specifications(dag, spec, (3.6, 2.4), max_size=60)
    assert len(alts) == 1
    assert alts[0][0].clock_max_mhz == pytest.approx(2400.0)


def test_alternatives_preserve_min_size_fraction(tiny_size_model):
    dag = montage_dag(montage_level_counts(15), ccr=0.01)
    gen = ResourceSpecificationGenerator(tiny_size_model, target_clock_ghz=3.5)
    spec = gen.generate(dag)
    for alt, _ in alternative_specifications(dag, spec, (2.4,), max_size=60):
        assert alt.min_size <= alt.size
        frac_orig = spec.min_size / spec.size
        assert alt.min_size / alt.size == pytest.approx(frac_orig, abs=0.1)
