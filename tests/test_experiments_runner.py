"""Tests for the chapter runner CLI (smoke scale, cheapest chapter only)."""

import pytest

from repro.experiments import runner


def test_requires_chapter_or_all():
    with pytest.raises(SystemExit):
        runner.main(["--scale", "smoke"])


def test_rejects_unknown_scale():
    with pytest.raises(SystemExit):
        runner.main(["--chapter", "4", "--scale", "galactic"])


def test_chapter4_smoke_runs(capsys):
    assert runner.main(["--chapter", "4", "--scale", "smoke"]) == 0
    out = capsys.readouterr().out
    assert "Fig IV-5" in out
    assert "Fig IV-6" in out
    assert "Figs IV-7/IV-8" in out
    for axis in ("size", "ccr", "parallelism", "density", "regularity", "mean_comp_cost"):
        assert f"varying {axis}" in out
    assert "Chapter 4 done" in out


def test_cli_experiments_dispatch(capsys):
    from repro.cli import main

    assert main(["experiments", "--chapter", "4", "--scale", "smoke"]) == 0
    assert "Fig IV-5" in capsys.readouterr().out


def test_seed_and_jobs_reach_the_chapter(monkeypatch):
    calls = {}

    def fake_chapter4(scale, seed=0, jobs=None):
        calls["scale"] = scale.name
        calls["seed"] = seed
        calls["jobs"] = jobs

    monkeypatch.setattr(runner, "run_chapter4", fake_chapter4)
    assert runner.main(["--chapter", "4", "--scale", "smoke", "--seed", "9", "--jobs", "3"]) == 0
    assert calls == {"scale": "smoke", "seed": 9, "jobs": 3}


def test_seed_defaults_to_zero(monkeypatch):
    calls = {}

    def fake_chapter5(scale, seed=0, jobs=None, cache_dir=None):
        calls["seed"] = seed
        calls["jobs"] = jobs
        calls["cache_dir"] = cache_dir

    monkeypatch.setattr(runner, "run_chapter5", fake_chapter5)
    assert runner.main(["--chapter", "5", "--scale", "smoke", "--no-cache"]) == 0
    assert calls == {"seed": 0, "jobs": None, "cache_dir": None}


def test_cli_forwards_seed_and_jobs(monkeypatch):
    from repro.cli import main

    seen = {}

    def fake_main(argv):
        seen["argv"] = argv
        return 0

    monkeypatch.setattr(runner, "main", fake_main)
    assert main(["experiments", "--chapter", "4", "--scale", "smoke", "--seed", "2", "--jobs", "4"]) == 0
    argv = seen["argv"]
    assert argv[argv.index("--seed") + 1] == "2"
    assert argv[argv.index("--jobs") + 1] == "4"


def _tables(out: str) -> str:
    # Drop the wall-clock line; everything else must be bit-identical.
    return "\n".join(line for line in out.splitlines() if "done in" not in line)


def test_chapter4_seed_changes_random_sweeps(capsys):
    # The runner's --seed must actually reach the DAG generation: the
    # Montage figures are deterministic, but the random-DAG sweeps differ.
    assert runner.main(["--chapter", "4", "--scale", "smoke", "--seed", "0"]) == 0
    out_a = _tables(capsys.readouterr().out)
    assert runner.main(["--chapter", "4", "--scale", "smoke", "--seed", "0"]) == 0
    out_b = _tables(capsys.readouterr().out)
    assert runner.main(["--chapter", "4", "--scale", "smoke", "--seed", "1"]) == 0
    out_c = _tables(capsys.readouterr().out)
    assert out_a == out_b
    assert out_a != out_c


def test_chapter4_jobs_does_not_change_output(capsys):
    assert runner.main(["--chapter", "4", "--scale", "smoke", "--jobs", "1"]) == 0
    serial = _tables(capsys.readouterr().out)
    assert runner.main(["--chapter", "4", "--scale", "smoke", "--jobs", "2"]) == 0
    parallel = _tables(capsys.readouterr().out)
    assert serial == parallel
