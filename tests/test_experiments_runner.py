"""Tests for the chapter runner CLI (smoke scale, cheapest chapter only)."""

import pytest

from repro.experiments import runner


def test_requires_chapter_or_all():
    with pytest.raises(SystemExit):
        runner.main(["--scale", "smoke"])


def test_rejects_unknown_scale():
    with pytest.raises(SystemExit):
        runner.main(["--chapter", "4", "--scale", "galactic"])


def test_chapter4_smoke_runs(capsys):
    assert runner.main(["--chapter", "4", "--scale", "smoke"]) == 0
    out = capsys.readouterr().out
    assert "Fig IV-5" in out
    assert "Fig IV-6" in out
    assert "Figs IV-7/IV-8" in out
    for axis in ("size", "ccr", "parallelism", "density", "regularity", "mean_comp_cost"):
        assert f"varying {axis}" in out
    assert "Chapter 4 done" in out


def test_cli_experiments_dispatch(capsys):
    from repro.cli import main

    assert main(["experiments", "--chapter", "4", "--scale", "smoke"]) == 0
    assert "Fig IV-5" in capsys.readouterr().out
