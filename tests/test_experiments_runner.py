"""Tests for the chapter runner CLI (smoke scale, cheapest chapter only)."""

import json

import pytest

from repro.experiments import runner


def test_requires_chapter_or_all():
    with pytest.raises(SystemExit):
        runner.main(["--scale", "smoke"])


def test_rejects_unknown_scale():
    with pytest.raises(SystemExit):
        runner.main(["--chapter", "4", "--scale", "galactic"])


def test_chapter4_smoke_runs(capsys):
    assert runner.main(["--chapter", "4", "--scale", "smoke"]) == 0
    out = capsys.readouterr().out
    assert "Fig IV-5" in out
    assert "Fig IV-6" in out
    assert "Figs IV-7/IV-8" in out
    for axis in ("size", "ccr", "parallelism", "density", "regularity", "mean_comp_cost"):
        assert f"varying {axis}" in out
    assert "Chapter 4 done" in out


def test_cli_experiments_dispatch(capsys):
    from repro.cli import main

    assert main(["experiments", "--chapter", "4", "--scale", "smoke"]) == 0
    assert "Fig IV-5" in capsys.readouterr().out


def test_seed_and_jobs_reach_the_chapter(monkeypatch):
    calls = {}

    def fake_chapter4(scale, seed=0, jobs=None):
        calls["scale"] = scale.name
        calls["seed"] = seed
        calls["jobs"] = jobs

    monkeypatch.setattr(runner, "run_chapter4", fake_chapter4)
    assert runner.main(["--chapter", "4", "--scale", "smoke", "--seed", "9", "--jobs", "3"]) == 0
    assert calls == {"scale": "smoke", "seed": 9, "jobs": 3}


def test_seed_defaults_to_zero(monkeypatch):
    calls = {}

    def fake_chapter5(scale, seed=0, jobs=None, cache_dir=None):
        calls["seed"] = seed
        calls["jobs"] = jobs
        calls["cache_dir"] = cache_dir

    monkeypatch.setattr(runner, "run_chapter5", fake_chapter5)
    assert runner.main(["--chapter", "5", "--scale", "smoke", "--no-cache"]) == 0
    assert calls == {"seed": 0, "jobs": None, "cache_dir": None}


def test_cli_forwards_seed_and_jobs(monkeypatch):
    from repro.cli import main

    seen = {}

    def fake_main(argv):
        seen["argv"] = argv
        return 0

    monkeypatch.setattr(runner, "main", fake_main)
    assert main(["experiments", "--chapter", "4", "--scale", "smoke", "--seed", "2", "--jobs", "4"]) == 0
    argv = seen["argv"]
    assert argv[argv.index("--seed") + 1] == "2"
    assert argv[argv.index("--jobs") + 1] == "4"


def _tables(out: str) -> str:
    # Drop the wall-clock line; everything else must be bit-identical.
    return "\n".join(line for line in out.splitlines() if "done in" not in line)


def test_chapter4_seed_changes_random_sweeps(capsys):
    # The runner's --seed must actually reach the DAG generation: the
    # Montage figures are deterministic, but the random-DAG sweeps differ.
    assert runner.main(["--chapter", "4", "--scale", "smoke", "--seed", "0"]) == 0
    out_a = _tables(capsys.readouterr().out)
    assert runner.main(["--chapter", "4", "--scale", "smoke", "--seed", "0"]) == 0
    out_b = _tables(capsys.readouterr().out)
    assert runner.main(["--chapter", "4", "--scale", "smoke", "--seed", "1"]) == 0
    out_c = _tables(capsys.readouterr().out)
    assert out_a == out_b
    assert out_a != out_c


def test_chapter4_jobs_does_not_change_output(capsys):
    assert runner.main(["--chapter", "4", "--scale", "smoke", "--jobs", "1"]) == 0
    serial = _tables(capsys.readouterr().out)
    assert runner.main(["--chapter", "4", "--scale", "smoke", "--jobs", "2"]) == 0
    parallel = _tables(capsys.readouterr().out)
    assert serial == parallel


def test_metrics_out_and_trace(tmp_path, capsys):
    metrics = tmp_path / "m.json"
    assert (
        runner.main(
            [
                "--chapter",
                "4",
                "--scale",
                "smoke",
                "--metrics-out",
                str(metrics),
                "--trace",
            ]
        )
        == 0
    )
    data = json.loads(metrics.read_text())
    assert data["schema"] == 1
    assert data["counters"]["scheduler.runs"] > 0
    assert data["counters"]["scheduler.tasks_scheduled"] > 0
    assert "chapter4" in data["spans"]
    assert any(path.endswith("schedule_dag") for path in data["spans"])
    err = capsys.readouterr().err
    assert "spans (wall-clock):" in err
    assert "counters:" in err


def test_cli_forwards_trace_and_metrics_out(monkeypatch, tmp_path):
    from repro.cli import main

    seen = {}

    def fake_main(argv):
        seen["argv"] = argv
        return 0

    monkeypatch.setattr(runner, "main", fake_main)
    out = str(tmp_path / "m.json")
    assert (
        main(
            [
                "experiments",
                "--chapter",
                "4",
                "--scale",
                "smoke",
                "--trace",
                "--metrics-out",
                out,
            ]
        )
        == 0
    )
    argv = seen["argv"]
    assert "--trace" in argv
    assert argv[argv.index("--metrics-out") + 1] == out


def _chapter5_metrics(tmp_path, jobs: int, tag: str) -> dict:
    metrics = tmp_path / f"metrics-{tag}.json"
    assert (
        runner.main(
            [
                "--chapter",
                "5",
                "--scale",
                "smoke",
                "--seed",
                "0",
                "--jobs",
                str(jobs),
                "--cache-dir",
                str(tmp_path / f"cache-{tag}"),
                "--metrics-out",
                str(metrics),
            ]
        )
        == 0
    )
    return json.loads(metrics.read_text())


@pytest.mark.slow
def test_chapter5_counter_totals_independent_of_jobs(tmp_path):
    # The acceptance check for the observability layer: a chapter-5 smoke
    # run emits span timings and cache hit/miss counters, and the counter
    # totals are identical for --jobs 1 and --jobs 4 (worker metrics are
    # merged back through map_cells).
    serial = _chapter5_metrics(tmp_path, jobs=1, tag="j1")
    parallel = _chapter5_metrics(tmp_path, jobs=4, tag="j4")
    assert serial["counters"] == parallel["counters"]
    assert serial["counters"]["cache.misses"] > 0
    assert serial["counters"]["knee.evaluations"] > 0
    assert "chapter5" in serial["spans"]
    assert any(path.endswith("schedule_dag") for path in serial["spans"])


# ----------------------------------------------------------------------
# Fault policy threading and failure-time metrics emission
# ----------------------------------------------------------------------
def test_fault_flags_install_ambient_policy(monkeypatch):
    from repro import parallel

    seen = {}

    def fake_chapter4(scale, seed=0, jobs=None):
        seen["policy"] = parallel.get_fault_policy()

    monkeypatch.setattr(runner, "run_chapter4", fake_chapter4)
    assert (
        runner.main(
            [
                "--chapter", "4", "--scale", "smoke",
                "--max-retries", "4", "--cell-timeout", "12.5", "--on-error", "retry",
            ]
        )
        == 0
    )
    policy = seen["policy"]
    assert policy.max_retries == 4
    assert policy.cell_timeout == 12.5
    assert policy.on_error == "retry"
    # The ambient policy is restored once the run finishes.
    assert parallel.get_fault_policy().on_error == "raise"


def test_default_policy_is_fail_fast(monkeypatch):
    from repro import parallel

    seen = {}

    def fake_chapter4(scale, seed=0, jobs=None):
        seen["policy"] = parallel.get_fault_policy()

    monkeypatch.setattr(runner, "run_chapter4", fake_chapter4)
    assert runner.main(["--chapter", "4", "--scale", "smoke"]) == 0
    assert seen["policy"].on_error == "raise"
    assert seen["policy"].max_retries == 2


def test_metrics_and_trace_emitted_when_chapter_raises(monkeypatch, tmp_path, capsys):
    # A failed run is exactly when the metrics matter: --trace and
    # --metrics-out must be honoured even though the chapter raised.
    def exploding_chapter4(scale, seed=0, jobs=None):
        import repro.observe as observe

        observe.inc("test.progress_before_crash")
        raise RuntimeError("chapter exploded")

    monkeypatch.setattr(runner, "run_chapter4", exploding_chapter4)
    metrics = tmp_path / "m.json"
    with pytest.raises(RuntimeError, match="chapter exploded"):
        runner.main(
            [
                "--chapter", "4", "--scale", "smoke",
                "--metrics-out", str(metrics), "--trace",
            ]
        )
    data = json.loads(metrics.read_text())
    assert data["schema"] == 1
    assert data["counters"]["test.progress_before_crash"] == 1
    err = capsys.readouterr().err
    assert "counters:" in err  # --trace table reached stderr too


def test_runner_prunes_stale_cache_tmp_files(monkeypatch, tmp_path):
    import os
    import time as _time

    from repro.parallel import ResultCache

    cache_dir = tmp_path / "cache"
    ns = cache_dir / "ns"
    ns.mkdir(parents=True)
    stale = ns / "orphan.tmp"
    stale.write_text("droppings")
    old = _time.time() - 7200
    os.utime(stale, (old, old))

    monkeypatch.setattr(runner, "run_chapter4", lambda scale, seed=0, jobs=None: None)
    assert (
        runner.main(["--chapter", "4", "--scale", "smoke", "--cache-dir", str(cache_dir)])
        == 0
    )
    assert not stale.exists()
