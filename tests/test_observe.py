"""Tests for the tracing/metrics subsystem (repro.observe)."""

from __future__ import annotations

import json
import threading

import pytest

import repro.observe as observe
from repro.observe import SCHEMA_VERSION, MetricsRegistry
from repro.parallel import ResultCache, map_cells


# ----------------------------------------------------------------------
# Counters / gauges
# ----------------------------------------------------------------------
def test_counter_increments_and_defaults():
    reg = MetricsRegistry()
    reg.inc("a")
    reg.inc("a", 4)
    reg.inc("b", 2.5)
    snap = reg.snapshot()
    assert snap["counters"] == {"a": 5, "b": 2.5}


def test_gauge_last_write_wins():
    reg = MetricsRegistry()
    reg.gauge("jobs", 1)
    reg.gauge("jobs", 8)
    assert reg.snapshot()["gauges"] == {"jobs": 8}


# ----------------------------------------------------------------------
# Spans
# ----------------------------------------------------------------------
def test_span_nesting_builds_paths():
    reg = MetricsRegistry()
    with reg.span("outer"):
        with reg.span("inner"):
            pass
        with reg.span("inner"):
            pass
    spans = reg.snapshot()["spans"]
    assert set(spans) == {"outer", "outer/inner"}
    assert spans["outer"]["count"] == 1
    assert spans["outer/inner"]["count"] == 2
    assert spans["outer"]["total_s"] >= spans["outer/inner"]["total_s"]


def test_span_aggregates_min_max():
    reg = MetricsRegistry()
    for _ in range(5):
        with reg.span("s"):
            pass
    stat = reg.snapshot()["spans"]["s"]
    assert stat["count"] == 5
    assert 0 <= stat["min_s"] <= stat["max_s"] <= stat["total_s"]


def test_span_stack_unwinds_on_exception():
    reg = MetricsRegistry()
    with pytest.raises(RuntimeError):
        with reg.span("boom"):
            raise RuntimeError("x")
    assert reg.current_path() == ""
    assert reg.snapshot()["spans"]["boom"]["count"] == 1


def test_current_path():
    reg = MetricsRegistry()
    assert reg.current_path() == ""
    with reg.span("a"):
        with reg.span("b"):
            assert reg.current_path() == "a/b"


# ----------------------------------------------------------------------
# Thread safety
# ----------------------------------------------------------------------
def test_concurrent_counters_and_spans_are_exact():
    reg = MetricsRegistry()
    n_threads, n_iter = 8, 500

    def work(tid: int) -> None:
        for _ in range(n_iter):
            reg.inc("hits")
            with reg.span("worker"):
                with reg.span(f"t{tid}"):
                    pass

    threads = [threading.Thread(target=work, args=(t,)) for t in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    snap = reg.snapshot()
    assert snap["counters"]["hits"] == n_threads * n_iter
    assert snap["spans"]["worker"]["count"] == n_threads * n_iter
    # Per-thread span stacks: every thread's nested path is intact.
    for tid in range(n_threads):
        assert snap["spans"][f"worker/t{tid}"]["count"] == n_iter


# ----------------------------------------------------------------------
# Task safety: the span stack is a ContextVar, so interleaved tasks in
# separate contexts (asyncio tasks, the service's virtual-time kernel)
# each see their own stack — threading.local could not provide this.
# ----------------------------------------------------------------------
def test_interleaved_contexts_keep_separate_span_stacks():
    import contextvars

    reg = MetricsRegistry()
    paths: dict[str, str] = {}

    def tenant(name: str):
        with reg.span(name):
            paths[f"{name}.outer"] = reg.current_path()
            yield
            with reg.span("inner"):
                paths[f"{name}.inner"] = reg.current_path()
                yield
        yield

    ctx_a, ctx_b = contextvars.copy_context(), contextvars.copy_context()
    gen_a, gen_b = tenant("a"), tenant("b")
    # Interleave the two generators step by step, each in its own context
    # — exactly how the service kernel resumes tenant coroutines.
    for gen, ctx in [(gen_a, ctx_a), (gen_b, ctx_b)] * 3:
        ctx.run(next, gen)

    assert paths == {
        "a.outer": "a",
        "b.outer": "b",
        "a.inner": "a/inner",
        "b.inner": "b/inner",
    }
    spans = reg.snapshot()["spans"]
    # No cross-contamination: no a/b, b/a, or deeper mixtures.
    assert set(spans) == {"a", "b", "a/inner", "b/inner"}


def test_asyncio_tasks_isolate_span_stacks():
    import asyncio

    reg = MetricsRegistry()
    paths: list[str] = []

    async def tenant(name: str) -> None:
        with reg.span(name):
            await asyncio.sleep(0)
            with reg.span("work"):
                await asyncio.sleep(0)
                paths.append(reg.current_path())

    async def main() -> None:
        await asyncio.gather(tenant("t0"), tenant("t1"))

    asyncio.run(main())
    assert sorted(paths) == ["t0/work", "t1/work"]
    assert set(reg.snapshot()["spans"]) == {"t0", "t1", "t0/work", "t1/work"}


# ----------------------------------------------------------------------
# Snapshot / merge / JSON schema
# ----------------------------------------------------------------------
def test_snapshot_schema_and_json_round_trip():
    reg = MetricsRegistry()
    reg.inc("c", 3)
    reg.gauge("g", 1.5)
    with reg.span("s"):
        pass
    snap = json.loads(reg.to_json())
    assert snap["schema"] == SCHEMA_VERSION
    assert set(snap) == {"schema", "counters", "gauges", "spans"}
    assert snap["counters"]["c"] == 3
    assert snap["gauges"]["g"] == 1.5
    assert set(snap["spans"]["s"]) == {"total_s", "count", "min_s", "max_s"}


def test_merge_adds_counters_and_accumulates_spans():
    a, b = MetricsRegistry(), MetricsRegistry()
    for reg in (a, b):
        reg.inc("n", 2)
        with reg.span("s"):
            pass
    a.merge(b.snapshot())
    snap = a.snapshot()
    assert snap["counters"]["n"] == 4
    assert snap["spans"]["s"]["count"] == 2


def test_merge_with_span_prefix_reroots_paths():
    parent, worker = MetricsRegistry(), MetricsRegistry()
    with worker.span("cell"):
        pass
    with parent.span("sweep"):
        parent.merge(worker.snapshot(), span_prefix=parent.current_path())
    assert "sweep/cell" in parent.snapshot()["spans"]


def test_reset_clears_everything():
    reg = MetricsRegistry()
    reg.inc("x")
    reg.gauge("y", 1)
    with reg.span("z"):
        pass
    reg.reset()
    snap = reg.snapshot()
    assert snap["counters"] == {} and snap["gauges"] == {} and snap["spans"] == {}


# ----------------------------------------------------------------------
# Module-level helpers / registry scoping
# ----------------------------------------------------------------------
def test_use_registry_isolates_and_restores():
    inner = MetricsRegistry()
    before = observe.get_registry()
    with observe.use_registry(inner) as reg:
        assert observe.get_registry() is inner is reg
        observe.inc("scoped")
        with observe.span("scoped_span"):
            pass
    assert observe.get_registry() is before
    snap = inner.snapshot()
    assert snap["counters"]["scoped"] == 1
    assert "scoped_span" in snap["spans"]
    assert "scoped" not in before.snapshot()["counters"]


def test_render_table_mentions_all_sections():
    reg = MetricsRegistry()
    reg.inc("scheduler.runs", 7)
    reg.gauge("parallel.jobs", 2)
    with reg.span("chapter5"):
        with reg.span("sweep"):
            pass
    table = reg.render_table()
    assert "spans (wall-clock):" in table
    assert "counters:" in table
    assert "gauges:" in table
    assert "scheduler.runs" in table and "7" in table
    assert "chapter5" in table and "sweep" in table


def test_render_table_empty_registry():
    assert "no metrics" in MetricsRegistry().render_table()


# ----------------------------------------------------------------------
# Worker metrics round-trip through map_cells
# ----------------------------------------------------------------------
def _metered_square(x: int) -> int:
    observe.inc("cells.metered")
    observe.inc("cells.work", x)
    with observe.span("cell"):
        return x * x


def _run_map(jobs: int) -> tuple[list[int], dict]:
    reg = MetricsRegistry()
    with observe.use_registry(reg):
        with reg.span("top"):
            out = map_cells(_metered_square, [1, 2, 3, 4], jobs=jobs)
    return out, reg.snapshot()


def test_worker_metrics_merge_matches_serial():
    out1, snap1 = _run_map(1)
    out2, snap2 = _run_map(2)
    assert out1 == out2 == [1, 4, 9, 16]
    # Counter totals must not depend on the worker count.
    assert snap1["counters"] == snap2["counters"]
    assert snap1["counters"]["cells.metered"] == 4
    assert snap1["counters"]["cells.work"] == 10
    # Worker spans re-root under the parent's active span path, so serial
    # and parallel runs produce the same span tree.
    assert "top/map_cells/cell" in snap1["spans"]
    assert "top/map_cells/cell" in snap2["spans"]
    assert snap2["spans"]["top/map_cells/cell"]["count"] == 4


def test_cache_hit_miss_counters(tmp_path):
    cache = ResultCache(tmp_path)
    reg = MetricsRegistry()
    with observe.use_registry(reg):
        map_cells(_metered_square, [1, 2], cache=cache, namespace="sq", key_extra="v1")
        map_cells(_metered_square, [1, 2], cache=cache, namespace="sq", key_extra="v1")
    counters = reg.snapshot()["counters"]
    assert counters["cache.misses"] == 2
    assert counters["cache.hits"] == 2
    assert counters["cache.misses.sq"] == 2
    assert counters["cache.hits.sq"] == 2
    # The second call computed nothing.
    assert counters["cells.metered"] == 2
    assert counters["parallel.cells_computed"] == 2
    assert counters["parallel.cells_total"] == 4
