"""CLI-level tests for ``repro fsck`` (exit codes, output modes)."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.durability import write_json_artifact
from repro.parallel import ResultCache


@pytest.fixture()
def cache_dir(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    cache.store("ns", {"cell": 1}, {"value": 41})
    cache.store("ns", {"cell": 2}, {"value": 42})
    return tmp_path / "cache"


def test_fsck_clean_cache_exits_0(cache_dir, capsys):
    assert main(["fsck", str(cache_dir)]) == 0
    out = capsys.readouterr().out
    assert "2 ok" in out and "0 recoverable" in out


def test_fsck_corrupt_cache_entry_exits_1(cache_dir, capsys):
    entry = sorted((cache_dir / "ns").glob("*.json"))[0]
    entry.write_bytes(entry.read_bytes().replace(b'"value"', b'"vandal"'))
    assert main(["fsck", str(cache_dir)]) == 1
    out = capsys.readouterr().out
    assert "RECOVERABLE" in out and "1 ok" in out


def test_fsck_corrupt_model_exits_2(tmp_path, capsys):
    p = tmp_path / "model.json"
    write_json_artifact(p, {"sizes": [1]}, kind="size-model")
    p.write_bytes(p.read_bytes().replace(b"[", b"{", 1))
    assert main(["fsck", str(tmp_path)]) == 2
    assert "UNRECOVERABLE" in capsys.readouterr().out


def test_fsck_missing_path_exits_2(tmp_path, capsys):
    assert main(["fsck", str(tmp_path / "ghost")]) == 2
    assert "no such file" in capsys.readouterr().out


def test_fsck_json_output(cache_dir, capsys):
    assert main(["fsck", "--json", str(cache_dir)]) == 0
    findings = json.loads(capsys.readouterr().out)
    assert len(findings) == 2
    assert {f["verdict"] for f in findings} == {"ok"}
    assert {f["kind"] for f in findings} == {"cache-entry"}


def test_fsck_quarantine_flag_renames(cache_dir, capsys):
    entry = sorted((cache_dir / "ns").glob("*.json"))[0]
    entry.write_text("junk")  # lint: allow — deliberately corrupting a fixture
    assert main(["fsck", "--quarantine", str(cache_dir)]) == 1
    assert not entry.exists()
    assert entry.with_name(entry.name + ".corrupt").exists()
    # A second pass sees the quarantined file, still recoverable.
    assert main(["fsck", str(cache_dir)]) == 1


def test_fsck_mixed_tree_reports_worst(cache_dir, tmp_path, capsys):
    model = tmp_path / "model.json"
    write_json_artifact(model, {"a": 1}, kind="size-model")
    model.write_bytes(model.read_bytes()[:-5])
    assert main(["fsck", str(cache_dir), str(model)]) == 2


def test_fsck_verbose_lists_skipped(tmp_path, capsys):
    (tmp_path / "notes.txt").write_text("hi")  # lint: allow — fixture
    assert main(["fsck", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "notes.txt" not in out  # skipped files hidden by default
    assert main(["fsck", "--verbose", str(tmp_path)]) == 0
    assert "notes.txt" in capsys.readouterr().out


def test_fsck_after_cache_get_quarantines_then_recovers(cache_dir):
    # End-to-end recovery: corrupt entry -> get() quarantines and misses
    # -> recompute/store -> fsck shows the quarantined evidence only.
    cache = ResultCache(cache_dir)
    entry = cache.path_for("ns", {"cell": 1})
    entry.write_text("{broken")  # lint: allow — fixture
    from repro.parallel import MISS

    assert cache.get("ns", {"cell": 1}) is MISS
    assert main(["fsck", str(cache_dir)]) == 1  # the .corrupt dropping
    cache.store("ns", {"cell": 1}, {"value": 41})
    assert cache.get("ns", {"cell": 1}) == {"value": 41}
