"""Tests for resource binding and selection under load."""

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.resources.binding import Binder, BindingError, sample_busy_hosts
from repro.selection.vgdl import VgES


def test_bind_and_release(small_platform):
    b = Binder(small_platform)
    ids = b.bind(np.array([0, 1, 2]))
    assert list(ids) == [0, 1, 2]
    assert b.is_bound(1)
    b.release(np.array([1]))
    assert not b.is_bound(1)
    assert b.is_bound(2)
    b.release_all()
    assert b.bound_hosts == set()


def test_double_bind_refused(small_platform):
    b = Binder(small_platform)
    b.bind(np.array([5]))
    with pytest.raises(BindingError):
        b.bind(np.array([4, 5]))
    # Atomicity: host 4 must not have been bound by the failed request.
    assert not b.is_bound(4)


def test_bind_validates_request(small_platform):
    b = Binder(small_platform)
    with pytest.raises(BindingError):
        b.bind(np.array([], dtype=int))
    with pytest.raises(BindingError):
        b.bind(np.array([3, 3]))
    with pytest.raises(BindingError):
        b.bind(np.array([10**9]))


def test_try_bind_success_and_conflict(small_platform):
    b = Binder(small_platform)
    assert b.try_bind(np.array([3, 1, 2])) == []
    assert b.bound_hosts == {1, 2, 3}
    # Conflicts come back sorted, and the request binds nothing at all.
    assert b.try_bind(np.array([5, 3, 1, 4])) == [1, 3]
    assert not b.is_bound(4) and not b.is_bound(5)


def test_try_bind_empty_is_noop_success(small_platform):
    # A zero-size gang port may legitimately request zero hosts: the
    # service path treats that as a successful no-op ...
    b = Binder(small_platform)
    assert b.try_bind(np.array([], dtype=int)) == []
    assert b.bound_hosts == set()


def test_bind_empty_still_raises(small_platform):
    # ... while the pipeline-layer `bind` keeps its historical contract:
    # a pipeline asking to bind nothing is a logic error worth surfacing.
    b = Binder(small_platform)
    with pytest.raises(BindingError, match="empty bind request"):
        b.bind(np.array([], dtype=int))


def test_try_bind_rejects_malformed(small_platform):
    b = Binder(small_platform)
    with pytest.raises(BindingError):
        b.try_bind(np.array([2, 2]))
    with pytest.raises(BindingError):
        b.try_bind(np.array([small_platform.n_hosts]))


def test_release_is_idempotent(small_platform):
    b = Binder(small_platform)
    b.bind(np.array([7]))
    b.release(np.array([7]))
    b.release(np.array([7]))  # no error
    assert not b.is_bound(7)


def test_sample_busy_hosts(small_platform, rng):
    busy = sample_busy_hosts(small_platform, 0.5, rng)
    frac = len(busy) / small_platform.n_hosts
    assert 0.3 < frac < 0.7
    assert sample_busy_hosts(small_platform, 0.0, rng) == set()
    with pytest.raises(ValueError):
        sample_busy_hosts(small_platform, 1.5, rng)


def test_vges_respects_unavailable(small_platform, rng):
    vges = VgES(small_platform)
    vg = vges.find_and_bind("V = LooseBagOf(n) [5:10] { n = [ Clock >= 1000 ] }")
    first = set(int(h) for h in vg.all_hosts())
    vges.unavailable = first
    vg2 = vges.find_and_bind("V = LooseBagOf(n) [5:10] { n = [ Clock >= 1000 ] }")
    assert vg2 is not None
    assert not (set(int(h) for h in vg2.all_hosts()) & first)


def test_vges_fails_when_everything_busy(small_platform):
    vges = VgES(small_platform, unavailable=set(range(small_platform.n_hosts)))
    assert vges.find_and_bind("V = LooseBagOf(n) [1:2] { n = [ Clock >= 1000 ] }") is None


def test_integrated_find_and_bind(small_platform):
    binder = Binder(small_platform)
    vges = VgES(small_platform)
    spec = "V = LooseBagOf(n) [5:10] { n = [ Clock >= 1000 ] }"
    vg1 = vges.find_and_bind_atomically(spec, binder)
    vg2 = vges.find_and_bind_atomically(spec, binder)
    assert vg1 is not None and vg2 is not None
    a = set(int(h) for h in vg1.all_hosts())
    b = set(int(h) for h in vg2.all_hosts())
    assert not a & b
    assert binder.bound_hosts == a | b
    # The engine's own unavailable set was restored.
    assert vges.unavailable == set()


# ----------------------------------------------------------------------
# Concurrency: the check-then-act race try_bind/bind must never lose
# ----------------------------------------------------------------------
@settings(max_examples=25, deadline=None)
@given(
    requests=st.lists(
        st.sets(st.integers(min_value=0, max_value=39), min_size=1, max_size=6),
        min_size=2,
        max_size=12,
    ),
    n_workers=st.integers(min_value=2, max_value=6),
)
def test_concurrent_try_bind_never_double_binds(small_platform, requests, n_workers):
    """Hammer one Binder from a thread pool; ownership stays exclusive.

    Each worker try_binds a host set and, on success, records itself as
    the owner of every host in it.  Without the internal lock the
    conflict scan and the update race, and two winners appear.
    """
    binder = Binder(small_platform)
    owners: dict[int, list[int]] = {}
    owners_lock = threading.Lock()
    barrier = threading.Barrier(min(n_workers, len(requests)))

    def worker(wid: int, hosts: set[int]) -> None:
        try:
            barrier.wait(timeout=5)
        except threading.BrokenBarrierError:
            pass
        if binder.try_bind(np.array(sorted(hosts))) == []:
            with owners_lock:
                for h in hosts:
                    owners.setdefault(h, []).append(wid)

    with ThreadPoolExecutor(max_workers=n_workers) as pool:
        futures = [pool.submit(worker, i, req) for i, req in enumerate(requests)]
        for f in futures:
            f.result()

    for host, who in owners.items():
        assert len(who) == 1, f"host {host} double-bound by workers {who}"
    assert binder.bound_hosts == set(owners)


def test_concurrent_bind_release_cycles_stay_consistent(small_platform):
    """bind/release churn from many threads leaves no phantom bindings."""
    binder = Binder(small_platform)
    errors: list[Exception] = []

    def churn_worker(hosts: np.ndarray) -> None:
        try:
            for _ in range(200):
                if binder.try_bind(hosts) == []:
                    assert all(binder.is_bound(int(h)) for h in hosts)
                    binder.release(hosts)
        except Exception as exc:  # pragma: no cover - only on regression
            errors.append(exc)

    # Two pairs fight over the same ranges; the fifth straddles both.
    ranges = [(0, 4), (4, 8), (0, 4), (4, 8), (2, 6)]
    threads = [
        threading.Thread(target=churn_worker, args=(np.arange(lo, hi),))
        for lo, hi in ranges
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert errors == []
    assert binder.bound_hosts == set()


def test_integrated_bind_exhaustion(small_platform):
    binder = Binder(small_platform)
    vges = VgES(small_platform)
    # Bind everything, then any request must fail cleanly.
    binder.bind(np.arange(small_platform.n_hosts))
    assert (
        vges.find_and_bind_atomically(
            "V = LooseBagOf(n) [1:2] { n = [ Clock >= 1000 ] }", binder
        )
        is None
    )
