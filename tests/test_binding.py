"""Tests for resource binding and selection under load."""

import numpy as np
import pytest

from repro.resources.binding import Binder, BindingError, sample_busy_hosts
from repro.selection.vgdl import VgES


def test_bind_and_release(small_platform):
    b = Binder(small_platform)
    ids = b.bind(np.array([0, 1, 2]))
    assert list(ids) == [0, 1, 2]
    assert b.is_bound(1)
    b.release(np.array([1]))
    assert not b.is_bound(1)
    assert b.is_bound(2)
    b.release_all()
    assert b.bound_hosts == set()


def test_double_bind_refused(small_platform):
    b = Binder(small_platform)
    b.bind(np.array([5]))
    with pytest.raises(BindingError):
        b.bind(np.array([4, 5]))
    # Atomicity: host 4 must not have been bound by the failed request.
    assert not b.is_bound(4)


def test_bind_validates_request(small_platform):
    b = Binder(small_platform)
    with pytest.raises(BindingError):
        b.bind(np.array([], dtype=int))
    with pytest.raises(BindingError):
        b.bind(np.array([3, 3]))
    with pytest.raises(BindingError):
        b.bind(np.array([10**9]))


def test_release_is_idempotent(small_platform):
    b = Binder(small_platform)
    b.bind(np.array([7]))
    b.release(np.array([7]))
    b.release(np.array([7]))  # no error
    assert not b.is_bound(7)


def test_sample_busy_hosts(small_platform, rng):
    busy = sample_busy_hosts(small_platform, 0.5, rng)
    frac = len(busy) / small_platform.n_hosts
    assert 0.3 < frac < 0.7
    assert sample_busy_hosts(small_platform, 0.0, rng) == set()
    with pytest.raises(ValueError):
        sample_busy_hosts(small_platform, 1.5, rng)


def test_vges_respects_unavailable(small_platform, rng):
    vges = VgES(small_platform)
    vg = vges.find_and_bind("V = LooseBagOf(n) [5:10] { n = [ Clock >= 1000 ] }")
    first = set(int(h) for h in vg.all_hosts())
    vges.unavailable = first
    vg2 = vges.find_and_bind("V = LooseBagOf(n) [5:10] { n = [ Clock >= 1000 ] }")
    assert vg2 is not None
    assert not (set(int(h) for h in vg2.all_hosts()) & first)


def test_vges_fails_when_everything_busy(small_platform):
    vges = VgES(small_platform, unavailable=set(range(small_platform.n_hosts)))
    assert vges.find_and_bind("V = LooseBagOf(n) [1:2] { n = [ Clock >= 1000 ] }") is None


def test_integrated_find_and_bind(small_platform):
    binder = Binder(small_platform)
    vges = VgES(small_platform)
    spec = "V = LooseBagOf(n) [5:10] { n = [ Clock >= 1000 ] }"
    vg1 = vges.find_and_bind_atomically(spec, binder)
    vg2 = vges.find_and_bind_atomically(spec, binder)
    assert vg1 is not None and vg2 is not None
    a = set(int(h) for h in vg1.all_hosts())
    b = set(int(h) for h in vg2.all_hosts())
    assert not a & b
    assert binder.bound_hosts == a | b
    # The engine's own unavailable set was restored.
    assert vges.unavailable == set()


def test_integrated_bind_exhaustion(small_platform):
    binder = Binder(small_platform)
    vges = VgES(small_platform)
    # Bind everything, then any request must fail cleanly.
    binder.bind(np.arange(small_platform.n_hosts))
    assert (
        vges.find_and_bind_atomically(
            "V = LooseBagOf(n) [1:2] { n = [ Clock >= 1000 ] }", binder
        )
        is None
    )
