"""Tests for ClassAd evaluation semantics (three-valued logic, scopes)."""

import pytest

from repro.selection.classad import (
    ERROR,
    UNDEFINED,
    EvalContext,
    evaluate,
    parse_classad,
    parse_expression,
)
from repro.selection.classad.evaluator import ErrorValue, Undefined


def ev(expr, my="[x = 1]", target=None, bindings=None):
    return evaluate(
        parse_expression(expr),
        EvalContext(
            my=parse_classad(my),
            target=parse_classad(target) if target else None,
            bindings=bindings or {},
        ),
    )


def test_arithmetic():
    assert ev("1 + 2 * 3") == 7
    assert ev("10 / 4") == 2.5
    assert ev("10 / 5") == 2
    assert ev("7 % 3") == 1
    assert ev("-(3 + 2)") == -5


def test_division_by_zero_is_error():
    assert isinstance(ev("1 / 0"), ErrorValue)
    assert isinstance(ev("1 % 0"), ErrorValue)


def test_string_concat_and_compare():
    assert ev('"a" + "b"') == "ab"
    assert ev('"LINUX" == "linux"') is True  # case-insensitive
    assert ev('"a" < "b"') is True


def test_mixed_type_comparison_is_error():
    assert isinstance(ev('1 == "1"'), ErrorValue)


def test_numeric_comparisons():
    assert ev("2 >= 2") is True
    assert ev("2 > 2") is False
    assert ev("1.5 < 2") is True
    assert ev("3 != 4") is True


def test_three_valued_and():
    assert ev("false && Missing") is False
    assert isinstance(ev("true && Missing"), Undefined)
    assert isinstance(ev("Missing && Missing"), Undefined)


def test_three_valued_or():
    assert ev("true || Missing") is True
    assert isinstance(ev("false || Missing"), Undefined)


def test_not():
    assert ev("!true") is False
    assert isinstance(ev("!Missing"), Undefined)
    assert isinstance(ev('!"str"'), ErrorValue)


def test_is_isnt():
    assert ev("Missing =?= undefined") is True
    assert ev("Missing =!= undefined") is False
    assert ev("1 =?= 1") is True
    assert ev('1 =?= "1"') is False


def test_numeric_coercion_in_logic():
    assert ev("1 && true") is True
    assert ev("0 || false") is False


def test_undefined_propagates_through_arithmetic():
    assert isinstance(ev("Missing + 1"), Undefined)
    assert isinstance(ev("Missing > 3"), Undefined)


def test_ternary():
    assert ev("x == 1 ? 10 : 20") == 10
    assert ev("x == 2 ? 10 : 20") == 20
    assert isinstance(ev("Missing ? 10 : 20"), Undefined)


def test_self_lookup():
    assert ev("x + 1") == 2
    assert ev("MY.x") == 1


def test_target_lookup():
    assert ev("Memory", my="[x=1]", target="[Memory = 2048]") == 2048
    assert ev("TARGET.Memory", my="[x=1]", target="[Memory = 2048]") == 2048
    assert isinstance(ev("TARGET.Memory", my="[x=1]"), Undefined)


def test_my_shadows_target():
    assert ev("v", my="[v = 1]", target="[v = 2]") == 1


def test_target_attr_evaluates_in_target_scope():
    # Target's attribute referencing the target's own attributes.
    assert ev("Rank", my="[x=1]", target="[Rank = Base * 2; Base = 21]") == 42


def test_binding_scopes():
    machine = parse_classad("[KFlops = 1000; Memory = 64]")
    v = evaluate(
        parse_expression("cpu.KFlops/1E3 + cpu.Memory/32"),
        EvalContext(my=parse_classad("[x=1]"), bindings={"cpu": machine}),
    )
    assert v == pytest.approx(3.0)


def test_unknown_scope_is_undefined():
    assert isinstance(ev("nosuch.attr"), Undefined)


def test_recursion_guard():
    assert isinstance(ev("loop", my="[loop = loop + 1]"), ErrorValue)


def test_builtin_functions():
    assert ev("floor(2.7)") == 2
    assert ev("ceiling(2.1)") == 3
    assert ev("round(2.5)") == 2  # banker's rounding
    assert ev("min(3, 1, 2)") == 1
    assert ev("max(3, 1, 2)") == 3
    assert ev('strcat("a", "b", "c")') == "abc"
    assert ev('size("hello")') == 5
    assert ev("isUndefined(Missing)") is True
    assert ev("isError(1/0)") is True
    assert isinstance(ev("nosuchfunc(1)"), ErrorValue)


def test_literals():
    assert ev("true") is True
    assert ev("FALSE") is False
    assert isinstance(ev("undefined"), Undefined)
    assert isinstance(ev("error"), ErrorValue)


def test_singletons():
    assert Undefined() is UNDEFINED
    assert ErrorValue() is ERROR
