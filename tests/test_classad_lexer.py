"""Tests for the ClassAd tokeniser."""

import pytest

from repro.selection.classad.lexer import LexError, tokenize


def kinds(text):
    return [(t.kind, t.value) for t in tokenize(text)[:-1]]


def test_numbers():
    assert kinds("42") == [("NUMBER", 42)]
    assert kinds("3.14") == [("NUMBER", 3.14)]
    assert kinds("1e3") == [("NUMBER", 1000.0)]
    assert kinds("2.5E-2") == [("NUMBER", 0.025)]


def test_unit_suffixes():
    assert kinds("100M") == [("NUMBER", 100 * 2.0**20)]
    assert kinds("2K") == [("NUMBER", 2 * 2.0**10)]
    assert kinds("1G") == [("NUMBER", 2.0**30)]


def test_suffix_not_applied_to_identifier():
    # "100Mb" is a number followed by... actually an identifier char after M
    toks = kinds("100Mem")
    assert toks[0] == ("NUMBER", 100)
    assert toks[1] == ("IDENT", "Mem")


def test_strings():
    assert kinds('"hello"') == [("STRING", "hello")]
    assert kinds("'single'") == [("STRING", "single")]
    assert kinds('"with \\" escape"') == [("STRING", 'with " escape')]


def test_unicode_quotes():
    # The dissertation's Fig. II-2 uses typographic quotes for the date.
    assert kinds("‘ Mon Oct 30 ’") == [("STRING", " Mon Oct 30 ")]


def test_unterminated_string():
    with pytest.raises(LexError):
        tokenize('"oops')


def test_operators():
    ops = [v for k, v in kinds("a == b != c <= d >= e && f || !g =?= h =!= i")]
    assert "==" in ops and "!=" in ops and "<=" in ops and ">=" in ops
    assert "&&" in ops and "||" in ops and "!" in ops
    assert "=?=" in ops and "=!=" in ops


def test_comments_skipped():
    assert kinds("1 // comment\n + 2") == [("NUMBER", 1), ("OP", "+"), ("NUMBER", 2)]
    assert kinds("1 /* block */ + 2") == [("NUMBER", 1), ("OP", "+"), ("NUMBER", 2)]


def test_unterminated_comment():
    with pytest.raises(LexError):
        tokenize("1 /* oops")


def test_unexpected_character():
    with pytest.raises(LexError):
        tokenize("a # b")


def test_eof_token():
    toks = tokenize("x")
    assert toks[-1].kind == "EOF"


def test_identifiers_with_underscores():
    assert kinds("Op_Sys_2") == [("IDENT", "Op_Sys_2")]
