"""Tests for DAG serialisation and DOT export."""

import numpy as np
import pytest

from repro.dag.io import dag_from_dict, dag_to_dict, dag_to_dot, load_dag, save_dag


def test_dict_roundtrip(medium_dag):
    back = dag_from_dict(dag_to_dict(medium_dag))
    assert back.n == medium_dag.n
    assert back.m == medium_dag.m
    np.testing.assert_allclose(back.comp, medium_dag.comp)
    np.testing.assert_array_equal(back.edge_src, medium_dag.edge_src)
    np.testing.assert_allclose(back.edge_comm, medium_dag.edge_comm)
    assert back.name == medium_dag.name


def test_file_roundtrip(diamond_dag, tmp_path):
    path = tmp_path / "d.json"
    save_dag(diamond_dag, path)
    back = load_dag(path)
    assert back.height == diamond_dag.height
    np.testing.assert_allclose(back.comp, diamond_dag.comp)


def test_edgeless_roundtrip():
    from repro.dag.graph import dag_from_edges

    d = dag_from_edges([1.0, 2.0], [])
    back = dag_from_dict(dag_to_dict(d))
    assert back.m == 0


# ----------------------------------------------------------------------
# Malformed-payload validation: each defect is reported as a one-line
# ValueError naming the offending node or edge.
# ----------------------------------------------------------------------
def _payload(**overrides):
    base = {
        "name": "bad",
        "comp": [1.0, 2.0, 3.0],
        "edges": [[0, 1, 0.5], [1, 2, 0.25]],
    }
    base.update(overrides)
    return base


def test_from_dict_missing_comp():
    with pytest.raises(ValueError, match="missing required key 'comp'"):
        dag_from_dict({"name": "bad"})


def test_from_dict_nan_comp_names_node():
    with pytest.raises(ValueError, match="node 1 has invalid computation cost"):
        dag_from_dict(_payload(comp=[1.0, float("nan"), 3.0]))


def test_from_dict_negative_comp_names_node():
    with pytest.raises(ValueError, match="node 2 has invalid computation cost"):
        dag_from_dict(_payload(comp=[1.0, 2.0, -0.5]))


def test_from_dict_bad_edge_shape_names_edge():
    with pytest.raises(ValueError, match=r"edge 1 is \[1, 2\], expected \[src, dst, comm\]"):
        dag_from_dict(_payload(edges=[[0, 1, 0.5], [1, 2]]))


def test_from_dict_non_numeric_edge_names_edge():
    with pytest.raises(ValueError, match="edge 0 is"):
        dag_from_dict(_payload(edges=[[0, "x", 0.5]]))


def test_from_dict_undeclared_endpoint_names_edge():
    with pytest.raises(ValueError, match=r"edge 1 destination 9 is not a declared node \(n=3\)"):
        dag_from_dict(_payload(edges=[[0, 1, 0.5], [1, 9, 0.25]]))
    with pytest.raises(ValueError, match="edge 0 source -1 is not a declared node"):
        dag_from_dict(_payload(edges=[[-1, 1, 0.5]]))


def test_from_dict_nan_comm_names_edge():
    with pytest.raises(ValueError, match=r"edge 1 \(1->2\) has invalid cost"):
        dag_from_dict(_payload(edges=[[0, 1, 0.5], [1, 2, float("nan")]]))


def test_from_dict_negative_comm_names_edge():
    with pytest.raises(ValueError, match=r"edge 0 \(0->1\) has invalid cost -1.0"):
        dag_from_dict(_payload(edges=[[0, 1, -1.0]]))


def test_from_dict_duplicate_edge_named():
    with pytest.raises(ValueError, match="duplicate edge 0->1"):
        dag_from_dict(_payload(edges=[[0, 1, 0.5], [0, 1, 0.7]]))


def test_from_dict_cycle_names_node():
    with pytest.raises(ValueError, match="cycle detected through node 0"):
        dag_from_dict(_payload(edges=[[0, 1, 0.5], [1, 2, 0.5], [2, 0, 0.5]]))


def test_from_dict_self_loop_is_a_cycle():
    with pytest.raises(ValueError, match="cycle detected through node 1"):
        dag_from_dict(_payload(edges=[[1, 1, 0.5]]))


def test_dot_export(diamond_dag):
    dot = dag_to_dot(diamond_dag)
    assert dot.startswith('digraph "diamond"')
    assert dot.count("->") == diamond_dag.m
    assert "n0" in dot and "n3" in dot


def test_dot_refuses_huge(medium_dag):
    with pytest.raises(ValueError):
        dag_to_dot(medium_dag, max_nodes=10)


def test_sharing_models(rng):
    from repro.resources.collection import ResourceCollection
    from repro.resources.sharing import space_shared, time_shared, time_shared_effective_speed

    rc = ResourceCollection.homogeneous(4, speed=3.0)
    split = space_shared(rc, 5)
    assert split.n_hosts == 20
    assert np.all(split.speed == pytest.approx(0.6))
    assert space_shared(rc, 1) is rc
    with pytest.raises(ValueError):
        space_shared(rc, 0)

    slow = time_shared(rc, 0.5)
    assert np.all(slow.speed == pytest.approx(1.5))
    assert time_shared_effective_speed(2.0, 0.25) == pytest.approx(0.5)
    with pytest.raises(ValueError):
        time_shared(rc, 0.0)


def test_space_shared_preserves_host_ids():
    from repro.resources.collection import ResourceCollection
    from repro.resources.sharing import space_shared

    rc = ResourceCollection(
        speed=np.array([2.0, 4.0]),
        cluster=np.array([0, 0]),
        comm_factor=np.ones((1, 1)),
        host_ids=np.array([7, 9]),
    )
    split = space_shared(rc, 2)
    assert list(split.host_ids) == [7, 7, 9, 9]
    assert list(split.speed) == [1.0, 1.0, 2.0, 2.0]
