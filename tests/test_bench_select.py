"""Smoke test for ``scripts/bench_select.py``.

Unlike the parallel benchmark, the smoke scale here is fast (seconds), so
the end-to-end run — including its internal indexed-vs-naive equivalence
assertions and the seeded pipeline replay — is a tier-1 test.
"""

from __future__ import annotations

import ast
import json
import os
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SCRIPT = REPO / "scripts" / "bench_select.py"


def test_bench_select_script_parses():
    ast.parse(SCRIPT.read_text())


def test_bench_select_smoke_runs_and_outputs_are_identical(tmp_path):
    out = tmp_path / "BENCH_select.json"
    env = dict(os.environ, PYTHONPATH=str(REPO / "src"))
    subprocess.run(
        [sys.executable, str(SCRIPT), "--scale", "smoke", "--output", str(out)],
        check=True,
        env=env,
        cwd=REPO,  # git metadata lives here
        timeout=540,
        stdout=subprocess.DEVNULL,
    )
    report = json.loads(out.read_text())
    assert report["identical_output"] is True
    assert report["pipeline_replay_identical"] is True
    assert report["git_sha"] not in ("", None)
    assert report["timestamp_utc"].endswith("Z")
    assert report["results"], "benchmark produced no result rows"
    for row in report["results"]:
        assert row["identical_output"] is True
        assert row["naive"]["p50_ms"] > 0 and row["indexed"]["p50_ms"] > 0
    # Lint throughput: every document language analyzed through the IR.
    lint_rows = {r["lang"]: r for r in report["lint_throughput"]}
    assert set(lint_rows) == {"vgdl", "classad", "sword", "json"}
    for row in lint_rows.values():
        assert row["clean"] is True
        assert row["specs_per_sec"] > 0


def test_checked_in_report_has_provenance_and_speedup():
    """The committed BENCH_select.json must carry provenance and meet the
    selective-spec speedup floor at 10k hosts."""
    report = json.loads((REPO / "BENCH_select.json").read_text())
    assert report["identical_output"] is True
    assert report["pipeline_replay_identical"] is True
    assert len(report["git_sha"]) == 40
    rows = [
        r
        for r in report["results"]
        if r["workload"] == "classad_match"
        and r.get("spec") == "selective"
        and r["n_hosts"] == 10_000
    ]
    assert rows, "bench scale must include the selective spec at 10k hosts"
    assert rows[0]["speedup"] >= 5.0
