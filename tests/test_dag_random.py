"""Tests (incl. property-based) for the random DAG generator."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dag.metrics import characteristics
from repro.dag.random_dag import RandomDagSpec, generate_random_dag, level_sizes_for_spec


def test_spec_validation():
    with pytest.raises(ValueError):
        RandomDagSpec(size=0)
    with pytest.raises(ValueError):
        RandomDagSpec(size=10, parallelism=1.5)
    with pytest.raises(ValueError):
        RandomDagSpec(size=10, density=0.0)
    with pytest.raises(ValueError):
        RandomDagSpec(size=10, ccr=-1.0)
    with pytest.raises(ValueError):
        RandomDagSpec(size=10, mean_comp_cost=0.0)
    with pytest.raises(ValueError):
        RandomDagSpec(size=10, regularity=1.5)


def test_level_sizes_sum(rng):
    spec = RandomDagSpec(size=500, parallelism=0.5, regularity=0.3)
    sizes = level_sizes_for_spec(spec, rng)
    assert sizes.sum() == 500
    assert np.all(sizes >= 1)


def test_level_sizes_regular(rng):
    spec = RandomDagSpec(size=100, parallelism=0.5, regularity=1.0)
    sizes = level_sizes_for_spec(spec, rng)
    # Perfect regularity: all levels equal (up to the rounding adjustment).
    assert sizes.max() - sizes.min() <= 1


def test_single_task_dag(rng):
    dag = generate_random_dag(RandomDagSpec(size=1), rng)
    assert dag.n == 1
    assert dag.m == 0


def test_chain_like_dag(rng):
    dag = generate_random_dag(RandomDagSpec(size=30, parallelism=0.0), rng)
    assert dag.height == 30  # parallelism 0 -> pure chain
    assert dag.width == 1


def test_flat_dag(rng):
    dag = generate_random_dag(RandomDagSpec(size=30, parallelism=1.0), rng)
    assert dag.height == 1
    assert dag.m == 0


def test_every_non_entry_has_prev_level_parent(rng):
    dag = generate_random_dag(
        RandomDagSpec(size=300, parallelism=0.6, regularity=0.2, density=0.3), rng
    )
    for v in range(dag.n):
        if dag.level[v] > 0:
            parents = dag.parents(v)
            assert parents.size >= 1
            assert np.all(dag.level[parents] == dag.level[v] - 1)


def test_max_parents_cap(rng):
    dag = generate_random_dag(
        RandomDagSpec(size=400, parallelism=0.8, density=1.0, max_parents=5), rng
    )
    non_entry = dag.in_degree[dag.in_degree > 0]
    assert non_entry.max() <= 5


def test_reproducible_with_same_seed():
    spec = RandomDagSpec(size=200, ccr=0.2, parallelism=0.5, regularity=0.5)
    d1 = generate_random_dag(spec, np.random.default_rng(99))
    d2 = generate_random_dag(spec, np.random.default_rng(99))
    assert np.array_equal(d1.edge_src, d2.edge_src)
    assert np.allclose(d1.comp, d2.comp)


def test_different_seeds_differ():
    spec = RandomDagSpec(size=200, ccr=0.2, parallelism=0.5, regularity=0.5)
    d1 = generate_random_dag(spec, np.random.default_rng(1))
    d2 = generate_random_dag(spec, np.random.default_rng(2))
    assert not np.allclose(d1.comp, d2.comp)


@settings(max_examples=25, deadline=None)
@given(
    size=st.integers(min_value=2, max_value=400),
    alpha=st.floats(min_value=0.0, max_value=1.0),
    beta=st.floats(min_value=0.01, max_value=1.0),
    delta=st.floats(min_value=0.05, max_value=1.0),
    ccr=st.floats(min_value=0.0, max_value=5.0),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_generator_properties(size, alpha, beta, delta, ccr, seed):
    """Any parameter combination yields a structurally valid DAG."""
    spec = RandomDagSpec(
        size=size, ccr=ccr, parallelism=alpha, regularity=beta, density=delta
    )
    dag = generate_random_dag(spec, np.random.default_rng(seed))
    assert dag.n == size
    assert np.all(dag.comp > 0)
    assert np.all(dag.edge_comm >= 0)
    # Topological consistency comes for free from DAG construction, but
    # check the level invariant explicitly.
    if dag.m:
        assert np.all(dag.level[dag.edge_src] < dag.level[dag.edge_dst])
    # Mean computational cost within the generator's [0.5, 1.5] * mean band.
    assert 0.5 * spec.mean_comp_cost <= dag.comp.mean() <= 1.5 * spec.mean_comp_cost


@settings(max_examples=15, deadline=None)
@given(
    size=st.integers(min_value=50, max_value=500),
    alpha=st.floats(min_value=0.2, max_value=0.9),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_parallelism_tracks_spec(size, alpha, seed):
    spec = RandomDagSpec(size=size, parallelism=alpha, regularity=0.8)
    ch = characteristics(generate_random_dag(spec, np.random.default_rng(seed)))
    assert ch.parallelism == pytest.approx(alpha, abs=0.15)
