"""Round-trip property tests: every generated specification must parse
under our own language frontends (vgDL, ClassAds, SWORD), including for
adversarial DAG names and owner strings (regression: `fork join & <x>`
used to make ``to_sword_xml`` emit ill-formed XML)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.core.generator as generator_mod
from repro.core.generator import ResourceSpecification, sanitize_dag_name
from repro.selection.classad import parse_classad
from repro.selection.sword import parse_sword_query
from repro.selection.vgdl import parse_vgdl

HEURISTICS = st.sampled_from(("mcp", "dls", "fca", "fcfs", "greedy"))
#: Free-form text with the markup/quoting characters that used to break
#: the renderers, plus arbitrary unicode (controls included — the XML
#: renderer must drop what XML 1.0 cannot carry).
ADVERSARIAL_TEXT = st.text(max_size=40) | st.text(
    alphabet='&<>"\'\\/(){}[]; \t\n‘’', max_size=20
)


@st.composite
def specs(draw):
    size = draw(st.integers(min_value=1, max_value=2000))
    min_size = draw(st.integers(min_value=1, max_value=size))
    clock_min = draw(st.floats(min_value=1.0, max_value=1e6, allow_nan=False))
    clock_max = clock_min * draw(st.floats(min_value=1.0, max_value=4.0))
    return ResourceSpecification(
        heuristic=draw(HEURISTICS),
        size=size,
        min_size=min_size,
        clock_min_mhz=clock_min,
        clock_max_mhz=clock_max,
        connectivity=draw(st.sampled_from(("tight", "loose"))),
        threshold=draw(st.floats(min_value=0.0001, max_value=0.5)),
        dag_name=draw(ADVERSARIAL_TEXT),
    )


@given(spec=specs())
@settings(max_examples=150, deadline=None)
def test_vgdl_round_trip(spec):
    parsed = parse_vgdl(spec.to_vgdl())
    agg = parsed.aggregates[0]
    assert (agg.lo, agg.hi) == (spec.min_size, spec.size)
    assert agg.kind == ("TightBagOf" if spec.connectivity == "tight" else "LooseBagOf")
    assert agg.rank is not None and agg.rank.unparse() == "Nodes"


@given(spec=specs(), owner=ADVERSARIAL_TEXT, cmd=ADVERSARIAL_TEXT)
@settings(max_examples=150, deadline=None)
def test_classad_round_trip(spec, owner, cmd):
    ad = parse_classad(spec.to_classad(owner=owner, cmd=cmd))
    assert ad["Owner"].value == owner
    assert ad["Cmd"].value == cmd
    assert ad["SchedulingHeuristic"].value == spec.heuristic
    port = ad["Ports"].items[0].ad
    assert port["Count"].value == spec.size


@given(spec=specs())
@settings(max_examples=150, deadline=None)
def test_sword_round_trip(spec):
    query = parse_sword_query(spec.to_sword_xml())
    group = query.groups[0]
    assert group.num_machines == spec.size
    assert group.name.endswith("_rc")
    clock = [r for r in group.numeric if r.attr == "clock"]
    assert clock and clock[0].required_lo == pytest.approx(spec.clock_min_mhz, abs=0.05)


# ----------------------------------------------------------------------
# Regressions for the confirmed escaping bug
# ----------------------------------------------------------------------
def _spec(name):
    return ResourceSpecification(
        heuristic="mcp",
        size=16,
        min_size=14,
        clock_min_mhz=2100.0,
        clock_max_mhz=3000.0,
        connectivity="tight",
        threshold=0.001,
        dag_name=name,
    )


def test_sword_xml_escapes_ampersand_and_angle_brackets():
    # Used to raise SwordError("invalid XML ...").
    query = parse_sword_query(_spec("fork join & <x>").to_sword_xml())
    assert query.groups[0].name == "fork join & <x>_rc"


def test_sword_xml_drops_illegal_xml_codepoints():
    query = parse_sword_query(_spec("a\x00b\x01c").to_sword_xml())
    assert query.groups[0].name == "abc_rc"


def test_classad_escapes_quote_injection():
    evil = 'x"; Cmd = "rm -rf /'
    ad = parse_classad(_spec("d").to_classad(owner=evil, cmd="run"))
    assert ad["Owner"].value == evil
    assert ad["Cmd"].value == "run"


def test_classad_escapes_backslashes():
    ad = parse_classad(_spec("d").to_classad(owner="a\\b\\", cmd='q"q'))
    assert ad["Owner"].value == "a\\b\\"
    assert ad["Cmd"].value == 'q"q'


# ----------------------------------------------------------------------
# dag-name sanitization in generate()
# ----------------------------------------------------------------------
def test_sanitize_dag_name():
    assert sanitize_dag_name("montage(levels=20)") == "montage"
    assert sanitize_dag_name("fork join & <x>") == "fork_join_x"
    assert sanitize_dag_name("  ") == "dag"
    assert sanitize_dag_name("((((") == "dag"
    assert sanitize_dag_name("ok_name-1.2") == "ok_name-1.2"


def test_generate_sanitizes_dag_name(tiny_size_model, small_montage):
    from dataclasses import replace

    from repro.core.generator import ResourceSpecificationGenerator

    dag = replace(small_montage, name="fork join & <x> (v=1)")
    spec = ResourceSpecificationGenerator(tiny_size_model).generate(dag)
    assert spec.dag_name == "fork_join_x"
    parse_sword_query(spec.to_sword_xml())


# ----------------------------------------------------------------------
# Doc/renderer agreement (Fig. VII-5 rank preference)
# ----------------------------------------------------------------------
def test_vgdl_rank_matches_module_docstring():
    assert "[rank = Nodes]" in _spec("d").to_vgdl()
    assert "``rank = Nodes``" in generator_mod.__doc__
