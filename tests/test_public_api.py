"""The re-exported public API stays importable and coherent."""

import repro


def test_version():
    assert repro.__version__ == "1.0.0"


def test_all_symbols_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_core_types_identity():
    from repro.core.generator import ResourceSpecificationGenerator
    from repro.core.size_model import SizePredictionModel

    assert repro.ResourceSpecificationGenerator is ResourceSpecificationGenerator
    assert repro.SizePredictionModel is SizePredictionModel


def test_minimal_flow_through_top_level_api(rng):
    dag = repro.generate_random_dag(
        repro.RandomDagSpec(size=40, ccr=0.1, parallelism=0.5, regularity=0.5), rng
    )
    rc = repro.ResourceCollection.homogeneous(4)
    schedule = repro.schedule_dag("mcp", dag, rc)
    assert repro.validate_schedule(dag, rc, schedule) == []
    assert repro.turnaround_time(schedule) > 0
    replay = repro.replay_schedule(dag, rc, schedule)
    assert replay.makespan == schedule.makespan
