"""Tests for repro.durability: atomic writes, checksum framing, fsck.

The disk-fault chaos matrix that drives these primitives through every
persistence surface (cache, models, journal, CLI exports) lives in
``tests/test_disk_faults.py``; this file proves the layer itself.
"""

from __future__ import annotations

import json

import pytest

from repro.durability import (
    ArtifactKindError,
    CorruptArtifactError,
    FRAMING_VERSION,
    atomic_write_bytes,
    atomic_write_json,
    atomic_write_text,
    frame_payload,
    fsck_exit_code,
    fsck_paths,
    payload_digest,
    quarantine,
    read_json_artifact,
    unframe_payload,
    use_disk_faults,
    write_json_artifact,
)
from repro.faults import DiskFaultInjector, InjectedCrash


# ----------------------------------------------------------------------
# Atomic writers
# ----------------------------------------------------------------------
def test_atomic_write_text_round_trip(tmp_path):
    p = tmp_path / "out.txt"
    atomic_write_text(p, "héllo\n")
    assert p.read_text(encoding="utf-8") == "héllo\n"


def test_atomic_write_replaces_existing(tmp_path):
    p = tmp_path / "out.txt"
    p.write_text("old")
    atomic_write_text(p, "new")
    assert p.read_text() == "new"


def test_atomic_write_leaves_no_droppings(tmp_path):
    atomic_write_bytes(tmp_path / "a.bin", b"abc")
    assert [f.name for f in tmp_path.iterdir()] == ["a.bin"]


def test_atomic_write_json_appends_newline(tmp_path):
    p = atomic_write_json(tmp_path / "o.json", {"a": 1})
    text = p.read_text()
    assert text.endswith("\n")
    assert json.loads(text) == {"a": 1}


def test_atomic_write_missing_dir_is_error(tmp_path):
    # mkdir is opt-in: a mistyped output path must stay an error.
    with pytest.raises(OSError):
        atomic_write_text(tmp_path / "no" / "such" / "f.txt", "x")


def test_atomic_write_mkdir_opt_in(tmp_path):
    p = tmp_path / "deep" / "tree" / "f.txt"
    atomic_write_bytes(p, b"x", mkdir=True)
    assert p.read_bytes() == b"x"


# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------
def test_frame_unframe_round_trip():
    payload = {"sizes": [1, 2], "nested": {"a": "b"}}
    framed = frame_payload(payload, "size-model")
    assert framed["repro_artifact"] == "size-model"
    assert framed["repro_format_version"] == FRAMING_VERSION
    assert framed["sizes"] == [1, 2]  # flat: payload keys stay top-level
    out, kind = unframe_payload(framed, "size-model")
    assert out == payload
    assert kind == "size-model"


def test_unframe_detects_payload_tamper():
    framed = frame_payload({"v": 1}, "cache-entry")
    framed["v"] = 2
    with pytest.raises(CorruptArtifactError, match="checksum mismatch"):
        unframe_payload(framed, "cache-entry")


def test_unframe_detects_wrong_version():
    framed = frame_payload({"v": 1}, "cache-entry")
    framed["repro_format_version"] = 99
    with pytest.raises(CorruptArtifactError, match="framing version"):
        unframe_payload(framed)


def test_unframe_kind_mismatch_is_distinct_error():
    framed = frame_payload({"v": 1}, "size-model")
    with pytest.raises(ArtifactKindError, match="expected 'heuristic-model'"):
        unframe_payload(framed, "heuristic-model")


def test_reserved_envelope_keys_rejected():
    with pytest.raises(ValueError, match="reserved"):
        frame_payload({"repro_sha256": "boom"}, "cache-entry")


def test_payload_digest_is_key_order_invariant():
    assert payload_digest({"a": 1, "b": 2}) == payload_digest({"b": 2, "a": 1})


# ----------------------------------------------------------------------
# read/write artifact + quarantine
# ----------------------------------------------------------------------
def test_artifact_round_trip(tmp_path):
    p = tmp_path / "m.json"
    write_json_artifact(p, {"x": [1, 2]}, kind="size-model")
    assert read_json_artifact(p, kind="size-model") == {"x": [1, 2]}


def test_corrupt_artifact_is_quarantined_not_loaded(tmp_path):
    p = tmp_path / "m.json"
    write_json_artifact(p, {"x": 1}, kind="size-model")
    body = p.read_text().replace('"x": 1', '"x": 2')
    p.write_text(body)  # lint: allow — deliberately corrupting a fixture
    with pytest.raises(CorruptArtifactError):
        read_json_artifact(p, kind="size-model")
    assert not p.exists()
    assert (tmp_path / "m.json.corrupt").exists()


def test_unparseable_artifact_is_quarantined(tmp_path):
    p = tmp_path / "m.json"
    p.write_text('{"half a rec')  # lint: allow — fixture
    with pytest.raises(CorruptArtifactError, match="unparseable"):
        read_json_artifact(p)
    assert (tmp_path / "m.json.corrupt").exists()


def test_kind_mismatch_does_not_quarantine(tmp_path):
    p = tmp_path / "m.json"
    write_json_artifact(p, {"x": 1}, kind="size-model")
    with pytest.raises(ArtifactKindError):
        read_json_artifact(p, kind="heuristic-model")
    assert p.exists()  # intact file, wrong ask — keep it


def test_legacy_unenveloped_artifact_loads(tmp_path):
    p = tmp_path / "old.json"
    p.write_text('{"sizes": [1]}')  # lint: allow — legacy-format fixture
    assert read_json_artifact(p, kind="size-model") == {"sizes": [1]}


def test_legacy_refused_when_disallowed(tmp_path):
    p = tmp_path / "old.json"
    p.write_text('{"sizes": [1]}')  # lint: allow — fixture
    with pytest.raises(CorruptArtifactError, match="envelope"):
        read_json_artifact(p, legacy_ok=False, quarantine_on_error=False)
    assert p.exists()


def test_mangled_kind_tag_is_corruption_not_legacy(tmp_path):
    # A bit flip inside the "repro_artifact" key name must not let the
    # file masquerade as a pre-envelope legacy artifact: the remaining
    # envelope keys prove it was framed, so it is corrupt.
    p = tmp_path / "m.json"
    write_json_artifact(p, {"sizes": [1]}, kind="size-model")
    p.write_bytes(p.read_bytes().replace(b"repro_artifact", b"repro_artifacX"))
    with pytest.raises(CorruptArtifactError, match="damaged envelope"):
        read_json_artifact(p, kind="size-model")
    assert not p.exists()
    assert p.with_name(p.name + ".corrupt").exists()


def test_missing_artifact_raises_file_not_found(tmp_path):
    with pytest.raises(FileNotFoundError):
        read_json_artifact(tmp_path / "nope.json")


def test_quarantine_returns_target(tmp_path):
    p = tmp_path / "f.json"
    p.write_text("x")  # lint: allow — fixture
    target = quarantine(p)
    assert target == tmp_path / "f.json.corrupt"
    assert target.exists() and not p.exists()


# ----------------------------------------------------------------------
# Injected disk faults against the atomic writer
# ----------------------------------------------------------------------
def _write_old(tmp_path):
    p = tmp_path / "state.json"
    write_json_artifact(p, {"gen": "old"}, kind="size-model")
    return p


def test_enospc_keeps_old_state_and_cleans_tmp(tmp_path):
    p = _write_old(tmp_path)
    with use_disk_faults(DiskFaultInjector(err_kind="enospc")):
        with pytest.raises(OSError) as exc:
            write_json_artifact(p, {"gen": "new"}, kind="size-model")
    assert "No space left" in str(exc.value)
    assert read_json_artifact(p)["gen"] == "old"
    assert not list(tmp_path.glob("*.tmp"))  # ordinary failure: tmp removed


def test_torn_write_crash_keeps_old_state(tmp_path):
    p = _write_old(tmp_path)
    with use_disk_faults(DiskFaultInjector(torn_after=7)):
        with pytest.raises(InjectedCrash):
            write_json_artifact(p, {"gen": "new"}, kind="size-model")
    assert read_json_artifact(p)["gen"] == "old"
    # A real kill leaves its droppings; prune/fsck deal with them.
    assert len(list(tmp_path.glob("*.tmp"))) == 1


def test_crash_before_rename_keeps_old_state(tmp_path):
    p = _write_old(tmp_path)
    with use_disk_faults(DiskFaultInjector(crash_before_rename=True)):
        with pytest.raises(InjectedCrash):
            write_json_artifact(p, {"gen": "new"}, kind="size-model")
    assert read_json_artifact(p)["gen"] == "old"


def test_bit_flip_is_detected_on_read(tmp_path):
    p = _write_old(tmp_path)
    with use_disk_faults(DiskFaultInjector(flip_bit=True, seed=3)):
        write_json_artifact(p, {"gen": "new"}, kind="size-model")
    # The flipped write committed — but it can never be *read* wrong.
    with pytest.raises(CorruptArtifactError):
        read_json_artifact(p, kind="size-model")
    assert (tmp_path / "state.json.corrupt").exists()


def test_bit_flip_is_deterministic(tmp_path):
    # Position derives from (seed, artifact name, length) only — the same
    # write under the same seed corrupts the same bit on every run.
    p = tmp_path / "x.json"
    outs = []
    for _run in range(2):
        with use_disk_faults(DiskFaultInjector(flip_bit=True, seed=9)):
            atomic_write_bytes(p, b"A" * 64)
        outs.append(p.read_bytes())
    assert outs[0] == outs[1] != b"A" * 64


def test_power_cut_truncation_is_detected(tmp_path):
    p = _write_old(tmp_path)
    with use_disk_faults(DiskFaultInjector(drop_fsync=True, power_cut_keep=10)):
        with pytest.raises(InjectedCrash):
            write_json_artifact(p, {"gen": "new"}, kind="size-model")
    assert p.stat().st_size == 10  # atomicity was genuinely violated ...
    with pytest.raises(CorruptArtifactError):  # ... and the read catches it
        read_json_artifact(p, kind="size-model")


def test_on_write_targets_kth_write(tmp_path):
    inj = DiskFaultInjector(err_kind="eio", on_write=3)
    with use_disk_faults(inj):
        atomic_write_text(tmp_path / "a", "1")
        atomic_write_text(tmp_path / "b", "2")
        with pytest.raises(OSError):
            atomic_write_text(tmp_path / "c", "3")
        atomic_write_text(tmp_path / "d", "4")  # disarmed again
    assert (tmp_path / "a").exists() and (tmp_path / "d").exists()
    assert not (tmp_path / "c").exists()


def test_injector_uninstalled_after_context(tmp_path):
    from repro.durability import active_injector

    with use_disk_faults(DiskFaultInjector(err_kind="eio")):
        assert active_injector() is not None
    assert active_injector() is None
    atomic_write_text(tmp_path / "ok.txt", "fine")  # no fault fires


# ----------------------------------------------------------------------
# fsck
# ----------------------------------------------------------------------
def test_fsck_clean_tree_exits_0(tmp_path):
    write_json_artifact(tmp_path / "m.json", {"a": 1}, kind="size-model")
    findings = fsck_paths([tmp_path])
    assert [f.verdict for f in findings] == ["ok"]
    assert fsck_exit_code(findings) == 0


def test_fsck_corrupt_cache_entry_is_recoverable(tmp_path):
    name = "a" * 64 + ".json"
    (tmp_path / name).write_text("garbage{{{")  # lint: allow — fixture
    findings = fsck_paths([tmp_path])
    assert [f.verdict for f in findings] == ["recoverable"]
    assert fsck_exit_code(findings) == 1


def test_fsck_corrupt_model_is_unrecoverable(tmp_path):
    p = tmp_path / "model.json"
    write_json_artifact(p, {"a": 1}, kind="size-model")
    raw = p.read_bytes().replace(b'"a": 1', b'"a": 7')
    p.write_bytes(raw)
    findings = fsck_paths([tmp_path])
    assert [f.verdict for f in findings] == ["unrecoverable"]
    assert fsck_exit_code(findings) == 2


def test_fsck_legacy_json_is_reported_not_failed(tmp_path):
    (tmp_path / "old.json").write_text('{"plain": true}')  # lint: allow
    findings = fsck_paths([tmp_path])
    assert [f.verdict for f in findings] == ["legacy"]
    assert fsck_exit_code(findings) == 0


def test_fsck_tmp_and_corrupt_droppings_are_recoverable(tmp_path):
    (tmp_path / "x.json.tmp").write_text("partial")  # lint: allow — fixture
    (tmp_path / "y.json.corrupt").write_text("bad")  # lint: allow — fixture
    findings = fsck_paths([tmp_path])
    assert sorted(f.verdict for f in findings) == ["recoverable", "recoverable"]
    assert fsck_exit_code(findings) == 1


def test_fsck_missing_path_is_unrecoverable(tmp_path):
    findings = fsck_paths([tmp_path / "ghost"])
    assert [f.verdict for f in findings] == ["unrecoverable"]
    assert fsck_exit_code(findings) == 2


def test_fsck_quarantine_renames_damage(tmp_path):
    p = tmp_path / "model.json"
    p.write_text("junk!!!")  # lint: allow — fixture
    fsck_paths([tmp_path], do_quarantine=True)
    assert not p.exists()
    assert (tmp_path / "model.json.corrupt").exists()


def test_fsck_journal_verdicts(tmp_path):
    from repro.journal import Journal

    clean = tmp_path / "clean.jsonl"
    j = Journal.create(str(clean), inputs="d" * 64)
    j.append({"kind": "batch", "i": 0, "t": 0.0, "ops": [], "sha": "s"})
    j.append({"kind": "batch", "i": 1, "t": 1.0, "ops": [], "sha": "t"})
    j.close()
    torn = tmp_path / "torn.jsonl"
    torn.write_bytes(clean.read_bytes() + b'{"kind": "ba')
    bad = tmp_path / "bad.jsonl"
    # Corrupt the *first* batch — mid-file damage, not a tolerable tail.
    bad.write_bytes(clean.read_bytes().replace(b'"i":0', b'"i":9'))

    by_name = {f.path.name: f for f in fsck_paths([tmp_path])}
    assert by_name["clean.jsonl"].verdict == "ok"
    assert by_name["torn.jsonl"].verdict == "recoverable"
    assert by_name["bad.jsonl"].verdict == "unrecoverable"
    assert fsck_exit_code(list(by_name.values())) == 2


def test_fsck_finding_format_and_dict(tmp_path):
    p = tmp_path / "m.json"
    write_json_artifact(p, {"a": 1}, kind="size-model")
    [finding] = fsck_paths([p])
    assert str(p) in finding.format()
    assert finding.to_dict()["verdict"] == "ok"
