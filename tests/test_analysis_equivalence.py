"""Tests for SPEC140 (cross-language equivalence) and SPEC141 (subsumption).

SPEC140 is the renderer-drift net: every rendering of a specification —
vgDL, ClassAds, SWORD XML, and the JSON document form — must lower to
the same normalized constraint facts (each compared over the subset its
syntax can express).  SPEC141 flags respecification-ladder rungs that an
earlier rung dominates, the same predicate the selection pipeline uses
to skip pointless retries.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.analysis import (
    analyze_specification,
    check_render_equivalence,
    check_subsumption,
    lower_document,
    normalized_facts,
    subsumes,
)
from repro.core.generator import ResourceSpecification


@pytest.fixture
def spec():
    return ResourceSpecification(
        heuristic="mcp",
        size=24,
        min_size=20,
        clock_min_mhz=2000.0,
        clock_max_mhz=4000.0,
        connectivity="loose",
        threshold=0.001,
        dag_name="montage",
    )


# ----------------------------------------------------------------------
# SPEC140: cross-language equivalence
# ----------------------------------------------------------------------
def test_clean_spec_has_no_renderer_drift(spec):
    report = check_render_equivalence(spec)
    assert len(report) == 0, report.render()


def test_normalized_facts_agree_across_languages(spec):
    by_lang = {
        lang: normalized_facts(lower_document(text, lang))
        for lang, text in (
            ("vgdl", spec.to_vgdl()),
            ("classad", spec.to_classad()),
            ("sword", spec.to_sword_xml()),
        )
    }
    for facts in by_lang.values():
        assert facts["count_hi"] == 24.0
        assert facts["clock_floor_mhz"] == 2000.0
    assert by_lang["vgdl"]["count_lo"] == 20.0
    assert by_lang["vgdl"]["connectivity"] == "loose"
    assert by_lang["classad"]["os"] == "linux"
    assert by_lang["sword"]["os"] == "linux"
    assert by_lang["sword"]["clock_desired_mhz"] == 4000.0


def test_drifted_clock_renderer_is_detected(spec, monkeypatch):
    # Simulate renderer drift: to_classad silently renders a different
    # clock floor than the specification carries.
    drifted = dataclasses.replace(spec, clock_min_mhz=3000.0)
    true_render = ResourceSpecification.to_classad
    monkeypatch.setattr(
        ResourceSpecification,
        "to_classad",
        lambda self, **kw: true_render(drifted, **kw),
    )
    report = check_render_equivalence(spec)
    drift = [d for d in report.diagnostics if d.code == "SPEC140"]
    assert drift and all(d.severity == "error" for d in drift)
    assert any(d.lang == "classad" and d.attr == "clock_floor_mhz" for d in drift)
    # The other languages keep rendering faithfully.
    assert all(d.lang == "classad" for d in drift)


def test_unparseable_rendering_is_spec140(spec, monkeypatch):
    monkeypatch.setattr(
        ResourceSpecification, "to_vgdl", lambda self: "rc = TightBagOf("
    )
    report = check_render_equivalence(spec)
    assert any(
        d.code == "SPEC140" and d.lang == "vgdl" and "does not parse" in d.message
        for d in report.diagnostics
    )


def test_json_document_participates_in_equivalence(spec, monkeypatch):
    # Drift confined to the JSON document form: to_dict swallows the
    # desired clock ceiling.
    true_dict = ResourceSpecification.to_dict
    monkeypatch.setattr(
        ResourceSpecification,
        "to_dict",
        lambda self: {**true_dict(self), "clock_max_mhz": self.clock_min_mhz},
    )
    report = check_render_equivalence(spec)
    drift = [d for d in report.diagnostics if d.code == "SPEC140"]
    assert drift and all(d.lang == "json" for d in drift)
    assert any(d.attr == "clock_desired_mhz" for d in drift)


def test_analyze_specification_runs_the_equivalence_check(spec, monkeypatch):
    # The generator self-check path surfaces SPEC140, not only lint_text.
    monkeypatch.setattr(
        ResourceSpecification, "to_vgdl", lambda self: "rc = TightBagOf("
    )
    report = analyze_specification(spec)
    assert any(d.code == "SPEC140" for d in report.diagnostics)
    assert report.has_errors


# ----------------------------------------------------------------------
# SPEC141: ladder subsumption
# ----------------------------------------------------------------------
def test_subsumes_reflexive_and_dominance(spec):
    assert subsumes(spec, spec)  # identical rung is redundant
    narrowed = dataclasses.replace(
        spec, size=26, min_size=22, clock_min_mhz=2500.0, clock_max_mhz=3500.0
    )
    assert subsumes(spec, narrowed)
    assert not subsumes(narrowed, spec)


def test_subsumes_respects_each_axis(spec):
    # Stricter connectivity on the earlier rung blocks domination...
    tight = dataclasses.replace(spec, connectivity="tight")
    assert not subsumes(tight, spec)
    # ...but a loose earlier rung dominates a tight later one.
    assert subsumes(spec, tight)
    # A wider clock band on the later rung blocks domination.
    wider = dataclasses.replace(spec, clock_min_mhz=1500.0)
    assert not subsumes(spec, wider)
    # A smaller request on the later rung blocks domination.
    smaller = dataclasses.replace(spec, size=16, min_size=12)
    assert not subsumes(spec, smaller)


def test_check_subsumption_flags_dominated_rung(spec):
    dominated = dataclasses.replace(spec, size=26, min_size=22)
    report = check_subsumption([spec, dominated])
    [diag] = report.diagnostics
    assert diag.code == "SPEC141" and diag.severity == "warning"
    assert "rung 1" in diag.message and "rung 0" in diag.message
    assert "size=[22:26]" in diag.message


def test_check_subsumption_clean_on_a_real_ladder(spec):
    # A genuinely descending ladder (each rung asks for less) is clean.
    ladder = [
        spec,
        dataclasses.replace(spec, size=16, min_size=12),
        dataclasses.replace(spec, size=8, min_size=6, clock_min_mhz=1000.0),
    ]
    assert len(check_subsumption(ladder)) == 0


def test_check_subsumption_reports_first_dominator_only(spec):
    dominated = dataclasses.replace(spec, size=26, min_size=22)
    report = check_subsumption([spec, spec, dominated])
    # spec[1] dominated by spec[0]; dominated by both, reported once.
    messages = [d.message for d in report.diagnostics]
    assert len(messages) == 2
    assert all("rung 0" in m for m in messages)
