"""Edge-case tests for the write-ahead journal (repro.journal).

The service-level journal behaviour (write-ahead ordering, kill/resume
bit-identity) is proven in ``tests/test_service_chaos.py``; this file
drives :func:`repro.journal.load` and :class:`repro.journal.Journal`
through the corruption geometries a real crash or failing disk produces:
torn tails (including ones cut mid multi-byte UTF-8 sequence), mid-file
bit flips, stale checksums, and empty / header-only files.
"""

from __future__ import annotations

import json

import pytest

from repro.journal import JOURNAL_VERSION, Journal, JournalError, load

INPUTS = "f" * 64


def _make(tmp_path, n_batches=2, name="j.jsonl"):
    path = tmp_path / name
    j = Journal.create(str(path), inputs=INPUTS)
    for i in range(n_batches):
        j.append(
            {"kind": "batch", "i": i, "t": float(i), "ops": [["bind", f"tén-{i}", i]], "sha": f"s{i}"}
        )
    j.close()
    return path


def test_round_trip(tmp_path):
    path = _make(tmp_path, n_batches=3)
    loaded = load(str(path))
    assert loaded.inputs == INPUTS
    assert [b["i"] for b in loaded.batches] == [0, 1, 2]
    assert loaded.clean_bytes == path.stat().st_size


def test_records_carry_crc_on_disk(tmp_path):
    path = _make(tmp_path, n_batches=1)
    lines = path.read_bytes().decode("utf-8").splitlines()
    for line in lines:
        rec = json.loads(line)
        assert len(rec["crc"]) == 16


def test_torn_tail_tolerated(tmp_path):
    path = _make(tmp_path, n_batches=2)
    intact = path.stat().st_size
    path.write_bytes(path.read_bytes() + b'{"kind":"batch","i":2')
    loaded = load(str(path))
    assert [b["i"] for b in loaded.batches] == [0, 1]
    assert loaded.clean_bytes == intact


def test_torn_tail_cut_mid_utf8_sequence(tmp_path):
    # Kill the process mid-write of a record containing "tén-…": the tail
    # ends inside the 2-byte UTF-8 encoding of "é".  load must neither
    # crash on the decode nor lose the intact prefix.
    path = _make(tmp_path, n_batches=1)
    intact = path.stat().st_size
    partial = '{"kind":"batch","i":1,"ops":[["bind","tén'.encode("utf-8")
    cut = partial[:-1]
    assert 0x80 <= cut[-1] <= 0xBF  # really ends inside a multi-byte char
    path.write_bytes(path.read_bytes() + cut)
    loaded = load(str(path))
    assert [b["i"] for b in loaded.batches] == [0]
    assert loaded.clean_bytes == intact


def test_mid_file_bit_flip_names_the_record(tmp_path):
    path = _make(tmp_path, n_batches=3)
    raw = path.read_bytes()
    # Flip a bit inside batch record 1 (line 3 of the file).
    lines = raw.split(b"\n")
    target = bytearray(lines[2])
    target[len(target) // 2] ^= 0x01
    lines[2] = bytes(target)
    path.write_bytes(b"\n".join(lines))
    with pytest.raises(JournalError, match=r"line 3 \(batch record 1\)"):
        load(str(path))


def test_tampered_field_with_stale_crc_rejected(tmp_path):
    # Semantic tamper, syntactically valid JSON: the crc is stale.
    path = _make(tmp_path, n_batches=2)
    raw = path.read_bytes().replace(b'"i":0', b'"i":5')
    path.write_bytes(raw)
    with pytest.raises(JournalError, match="checksum mismatch"):
        load(str(path))


def test_corrupt_final_complete_line_is_torn_tail(tmp_path):
    # A newline-terminated but damaged final record is indistinguishable
    # from a torn write that happened to end at '\n' — tolerated.
    path = _make(tmp_path, n_batches=2)
    lines = path.read_bytes().split(b"\n")
    lines[2] = lines[2].replace(b'"i":1', b'"i":8')
    path.write_bytes(b"\n".join(lines))
    loaded = load(str(path))
    assert [b["i"] for b in loaded.batches] == [0]


def test_zero_length_file_is_a_clear_error(tmp_path):
    path = tmp_path / "empty.jsonl"
    path.write_bytes(b"")
    with pytest.raises(JournalError, match="empty"):
        load(str(path))


def test_header_only_file_loads_with_no_batches(tmp_path):
    path = tmp_path / "h.jsonl"
    Journal.create(str(path), inputs=INPUTS).close()
    loaded = load(str(path))
    assert loaded.batches == []
    assert loaded.inputs == INPUTS


def test_header_only_file_resumes(tmp_path):
    path = tmp_path / "h.jsonl"
    Journal.create(str(path), inputs=INPUTS).close()
    j = Journal.resume(str(path), inputs=INPUTS)
    assert not j.replaying
    j.append({"kind": "batch", "i": 0, "t": 0.0, "ops": [], "sha": "s"})
    j.close()
    assert [b["i"] for b in load(str(path)).batches] == [0]


def test_v1_journal_refused_with_version_message(tmp_path):
    path = tmp_path / "v1.jsonl"
    path.write_bytes(
        json.dumps({"kind": "header", "version": 1, "inputs": INPUTS}).encode() + b"\n"
    )
    with pytest.raises(JournalError, match="version 1"):
        load(str(path))


def test_resume_truncates_torn_tail(tmp_path):
    path = _make(tmp_path, n_batches=2)
    intact = path.stat().st_size
    path.write_bytes(path.read_bytes() + b'{"torn')
    j = Journal.resume(str(path), inputs=INPUTS)
    j.close()
    assert path.stat().st_size == intact


def test_resume_refuses_different_inputs(tmp_path):
    path = _make(tmp_path)
    with pytest.raises(JournalError, match="different inputs"):
        Journal.resume(str(path), inputs="0" * 64)


def test_replay_divergence_detected(tmp_path):
    path = _make(tmp_path, n_batches=1)
    j = Journal.resume(str(path), inputs=INPUTS)
    assert j.replaying
    with pytest.raises(JournalError, match="divergence"):
        j.append({"kind": "batch", "i": 0, "t": 0.0, "ops": [["other"]], "sha": "x"})
    j.close()


def test_version_is_2():
    # The crc framing shipped with format v2; a silent downgrade would
    # resurrect unchecksummed journals.
    assert JOURNAL_VERSION == 2
