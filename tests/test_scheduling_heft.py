"""Targeted tests for the HEFT baseline."""

import numpy as np
import pytest

from repro.dag.graph import dag_from_edges
from repro.dag.random_dag import RandomDagSpec, generate_random_dag
from repro.resources.collection import ResourceCollection
from repro.scheduling import replay_schedule, schedule_dag, validate_schedule


def test_heft_registered():
    from repro.scheduling import list_schedulers

    assert "heft" in list_schedulers()


def test_heft_valid_and_tight(medium_dag, rc8):
    s = schedule_dag("heft", medium_dag, rc8)
    assert validate_schedule(medium_dag, rc8, s) == []
    r = replay_schedule(medium_dag, rc8, s)
    np.testing.assert_allclose(r.start, s.start, atol=1e-9)


def test_heft_rank_order_is_topological():
    # Upward ranks strictly decrease along edges for positive costs, so any
    # valid schedule must exist; spot-check a diamond.
    dag = dag_from_edges([4.0, 3.0, 5.0, 2.0], [(0, 1, 1.0), (0, 2, 2.0), (1, 3, 1.5), (2, 3, 0.5)])
    rc = ResourceCollection.homogeneous(2)
    s = schedule_dag("heft", dag, rc)
    assert s.start[0] < s.start[3]


def test_heft_uses_fast_hosts(rng):
    dag = generate_random_dag(
        RandomDagSpec(size=80, ccr=0.05, parallelism=0.5, regularity=0.5), rng
    )
    rc = ResourceCollection.heterogeneous_clock(8, 0.5, rng)
    heft = schedule_dag("heft", dag, rc)
    rnd = schedule_dag("random", dag, rc)
    assert heft.makespan < rnd.makespan


def test_heft_competitive_with_mcp(rng):
    dag = generate_random_dag(
        RandomDagSpec(size=150, ccr=0.5, parallelism=0.6, regularity=0.5), rng
    )
    rc = ResourceCollection.homogeneous(16)
    heft = schedule_dag("heft", dag, rc)
    mcp = schedule_dag("mcp", dag, rc)
    assert heft.makespan <= 1.25 * mcp.makespan


def test_heft_ops_comparable_to_mcp(medium_dag, rc8):
    heft = schedule_dag("heft", medium_dag, rc8)
    mcp = schedule_dag("mcp", medium_dag, rc8)
    assert heft.ops == pytest.approx(mcp.ops, rel=0.05)
