"""Tests for the auxiliary workflow builders."""

import numpy as np
import pytest

from repro.dag.metrics import parallelism
from repro.dag.workflows import chain_dag, eman_dag, fork_join_dag, scec_dag


def test_chain_structure():
    d = chain_dag(10, comp_cost=3.0, comm_cost=0.5)
    assert d.n == 10
    assert d.m == 9
    assert d.height == 10
    assert d.width == 1
    assert np.all(d.comp == 3.0)
    assert np.all(d.edge_comm == 0.5)


def test_chain_of_one():
    d = chain_dag(1)
    assert d.n == 1
    assert d.m == 0


def test_chain_validation():
    with pytest.raises(ValueError):
        chain_dag(0)


def test_fork_join():
    d = fork_join_dag(5)
    assert d.n == 7
    assert d.height == 3
    assert d.width == 5
    assert d.in_degree[6] == 5
    assert d.out_degree[0] == 5


def test_fork_join_validation():
    with pytest.raises(ValueError):
        fork_join_dag(0)


def test_scec_parallel_chains():
    d = scec_dag(chains=4, chain_length=6)
    assert d.n == 24
    assert d.m == 4 * 5
    assert d.height == 6
    assert d.width == 4
    # Chains are independent: each non-head task has exactly one parent.
    assert np.all(d.in_degree <= 1)
    assert int((d.in_degree == 0).sum()) == 4


def test_scec_validation():
    with pytest.raises(ValueError):
        scec_dag(0, 5)
    with pytest.raises(ValueError):
        scec_dag(5, 0)


def test_eman_compute_dominated():
    d = eman_dag(width=8, comp_cost=1000.0, comm_cost=0.1)
    assert d.n == 10
    assert d.width == 8
    # Compute-dominated: total comm << total comp.
    assert d.edge_comm.sum() < 0.01 * d.comp.sum()


def test_parallelism_ordering():
    # chain < scec < fork-join in parallelism.
    p_chain = parallelism(chain_dag(16))
    p_scec = parallelism(scec_dag(4, 4))
    p_fj = parallelism(fork_join_dag(14))
    assert p_chain < p_scec < p_fj
