"""Correctness tests for the on-disk result cache: cold/warm behaviour,
key invalidation, and resilience to corrupted entries."""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.parallel import MISS, ResultCache, map_cells


def _square(cell):
    return {"cell": cell, "value": cell * cell}


_CALLS_FILE = None


def _counting_square(cell):
    # Appends a line per invocation so cache hits are observable even
    # across processes (jobs=1 keeps it in-process anyway).
    with open(_CALLS_FILE, "a") as fh:
        fh.write(f"{cell}\n")
    return _square(cell)


@pytest.fixture
def calls_file(tmp_path):
    global _CALLS_FILE
    _CALLS_FILE = str(tmp_path / "calls.log")
    yield _CALLS_FILE
    _CALLS_FILE = None


def _n_calls(path):
    try:
        with open(path) as fh:
            return sum(1 for _ in fh)
    except FileNotFoundError:
        return 0


# ----------------------------------------------------------------------
# ResultCache primitives
# ----------------------------------------------------------------------
def test_get_on_empty_cache_is_miss(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    assert cache.get("ns", ("k",)) is MISS


def test_store_then_get_roundtrip(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    payload = {"rows": [1, 2.5, "x"], "nested": {"a": None}}
    cache.store("ns", ("k", 1, 0.5), payload)
    assert cache.get("ns", ("k", 1, 0.5)) == payload


def test_none_payload_is_cacheable(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    cache.store("ns", ("k",), None)
    got = cache.get("ns", ("k",))
    assert got is None and got is not MISS


def test_different_key_or_namespace_misses(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    cache.store("ns", ("k", "v1"), 1)
    assert cache.get("ns", ("k", "v2")) is MISS
    assert cache.get("other", ("k", "v1")) is MISS


def test_corrupted_entry_is_discarded_and_miss(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    cache.store("ns", ("k",), {"v": 1})
    path = cache.path_for("ns", ("k",))
    path.write_text("{not json at all")
    assert cache.get("ns", ("k",)) is MISS
    assert not path.exists()  # bad entry removed so it can be rewritten


def test_truncated_entry_is_discarded_and_miss(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    cache.store("ns", ("k",), {"v": list(range(100))})
    path = cache.path_for("ns", ("k",))
    path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
    assert cache.get("ns", ("k",)) is MISS


def test_hash_collision_with_wrong_key_is_miss(tmp_path):
    # An entry whose stored key string disagrees with the request must not
    # be served (defends against digest collisions / manual tampering).
    cache = ResultCache(tmp_path / "cache")
    cache.store("ns", ("k",), 1)
    path = cache.path_for("ns", ("k",))
    blob = json.loads(path.read_text())
    blob["key"] = "something else"
    path.write_text(json.dumps(blob))
    assert cache.get("ns", ("k",)) is MISS


def test_default_cache_honours_env(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "envcache"))
    cache = ResultCache.default()
    cache.store("ns", ("k",), 7)
    assert (tmp_path / "envcache").is_dir()
    assert cache.get("ns", ("k",)) == 7


# ----------------------------------------------------------------------
# map_cells + cache
# ----------------------------------------------------------------------
def test_cold_then_warm(tmp_path, calls_file):
    cache = ResultCache(tmp_path / "cache")
    cells = [1, 2, 3, 4]

    cold = map_cells(_counting_square, cells, jobs=1, cache=cache, namespace="sq")
    assert _n_calls(calls_file) == 4

    warm = map_cells(_counting_square, cells, jobs=1, cache=cache, namespace="sq")
    assert _n_calls(calls_file) == 4  # nothing recomputed
    assert warm == cold


def test_partial_warm_computes_only_missing(tmp_path, calls_file):
    cache = ResultCache(tmp_path / "cache")
    map_cells(_counting_square, [1, 2], jobs=1, cache=cache, namespace="sq")
    out = map_cells(_counting_square, [1, 2, 3], jobs=1, cache=cache, namespace="sq")
    assert _n_calls(calls_file) == 3  # only cell 3 was new
    assert out == [_square(1), _square(2), _square(3)]


def test_key_extra_invalidates(tmp_path, calls_file):
    # A changed parameter or bumped version tag must miss the old entries.
    cache = ResultCache(tmp_path / "cache")
    map_cells(_counting_square, [1, 2], jobs=1, cache=cache, namespace="sq", key_extra=("v1",))
    map_cells(_counting_square, [1, 2], jobs=1, cache=cache, namespace="sq", key_extra=("v2",))
    assert _n_calls(calls_file) == 4


def test_corrupted_cache_entry_recomputed_not_fatal(tmp_path, calls_file):
    cache = ResultCache(tmp_path / "cache")
    map_cells(_counting_square, [5], jobs=1, cache=cache, namespace="sq")
    path = cache.path_for("sq", (None, 5))
    assert path.exists()
    path.write_text("garbage")
    out = map_cells(_counting_square, [5], jobs=1, cache=cache, namespace="sq")
    assert out == [_square(5)]
    assert _n_calls(calls_file) == 2  # recomputed once, no crash


def test_parallel_run_populates_cache_for_serial(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    a = map_cells(_square, [1, 2, 3], jobs=3, cache=cache, namespace="sq")
    b = map_cells(_square, [1, 2, 3], jobs=1, cache=cache, namespace="sq")
    assert a == b


# ----------------------------------------------------------------------
# prune_tmp: orphaned temp files from a SIGKILLed store()
# ----------------------------------------------------------------------
def _plant_tmp(cache, age_s):
    # What a store() killed between write and rename leaves behind.
    ns = cache.root / "ns"
    ns.mkdir(parents=True, exist_ok=True)
    tmp = ns / f"orphan{age_s}.tmp"
    tmp.write_text("half-written payload")
    stamp = time.time() - age_s
    os.utime(tmp, (stamp, stamp))
    return tmp


def test_prune_tmp_removes_stale_keeps_fresh(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    cache.store("ns", ("k",), 1)  # a real entry must survive pruning
    stale = _plant_tmp(cache, age_s=7200)
    fresh = _plant_tmp(cache, age_s=0)
    assert cache.prune_tmp() == 1
    assert not stale.exists()
    assert fresh.exists()  # may belong to a concurrent store() in flight
    assert cache.get("ns", ("k",)) == 1


def test_prune_tmp_zero_age_removes_everything(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    _plant_tmp(cache, age_s=0)
    _plant_tmp(cache, age_s=50)
    assert cache.prune_tmp(max_age_s=0) == 2
    assert not list(cache.root.glob("**/*.tmp"))


def test_prune_tmp_on_missing_root_is_noop(tmp_path):
    assert ResultCache(tmp_path / "never-created").prune_tmp() == 0


def test_default_cache_prunes_stale_tmp(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "envcache"))
    stale = _plant_tmp(ResultCache(tmp_path / "envcache"), age_s=7200)
    ResultCache.default()
    assert not stale.exists()


# ----------------------------------------------------------------------
# Incremental checkpointing: results are stored as cells complete
# ----------------------------------------------------------------------
_STOP_AFTER_TWO = None


def _square_then_stop(cell):
    # Third invocation dies: anything checkpointed so far must survive.
    with open(_STOP_AFTER_TWO, "a") as fh:
        fh.write("x")
    if os.path.getsize(_STOP_AFTER_TWO) > 2:
        raise RuntimeError("simulated crash")
    return _square(cell)


def test_results_checkpointed_as_cells_complete(tmp_path):
    global _STOP_AFTER_TWO
    _STOP_AFTER_TWO = str(tmp_path / "count")
    cache = ResultCache(tmp_path / "cache")
    try:
        with pytest.raises(RuntimeError):
            map_cells(_square_then_stop, [1, 2, 3, 4], jobs=1, cache=cache, namespace="sq")
    finally:
        _STOP_AFTER_TWO = None
    # The first two cells were stored before the crash — not buffered
    # until the end of the batch.
    assert cache.get("sq", (None, 1)) == _square(1)
    assert cache.get("sq", (None, 2)) == _square(2)
    assert cache.get("sq", (None, 3)) is MISS
