"""Correctness tests for the on-disk result cache: cold/warm behaviour,
key invalidation, and resilience to corrupted entries."""

from __future__ import annotations

import json
import os

import pytest

from repro.parallel import MISS, ResultCache, map_cells


def _square(cell):
    return {"cell": cell, "value": cell * cell}


_CALLS_FILE = None


def _counting_square(cell):
    # Appends a line per invocation so cache hits are observable even
    # across processes (jobs=1 keeps it in-process anyway).
    with open(_CALLS_FILE, "a") as fh:
        fh.write(f"{cell}\n")
    return _square(cell)


@pytest.fixture
def calls_file(tmp_path):
    global _CALLS_FILE
    _CALLS_FILE = str(tmp_path / "calls.log")
    yield _CALLS_FILE
    _CALLS_FILE = None


def _n_calls(path):
    try:
        with open(path) as fh:
            return sum(1 for _ in fh)
    except FileNotFoundError:
        return 0


# ----------------------------------------------------------------------
# ResultCache primitives
# ----------------------------------------------------------------------
def test_get_on_empty_cache_is_miss(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    assert cache.get("ns", ("k",)) is MISS


def test_store_then_get_roundtrip(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    payload = {"rows": [1, 2.5, "x"], "nested": {"a": None}}
    cache.store("ns", ("k", 1, 0.5), payload)
    assert cache.get("ns", ("k", 1, 0.5)) == payload


def test_none_payload_is_cacheable(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    cache.store("ns", ("k",), None)
    got = cache.get("ns", ("k",))
    assert got is None and got is not MISS


def test_different_key_or_namespace_misses(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    cache.store("ns", ("k", "v1"), 1)
    assert cache.get("ns", ("k", "v2")) is MISS
    assert cache.get("other", ("k", "v1")) is MISS


def test_corrupted_entry_is_discarded_and_miss(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    cache.store("ns", ("k",), {"v": 1})
    path = cache.path_for("ns", ("k",))
    path.write_text("{not json at all")
    assert cache.get("ns", ("k",)) is MISS
    assert not path.exists()  # bad entry removed so it can be rewritten


def test_truncated_entry_is_discarded_and_miss(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    cache.store("ns", ("k",), {"v": list(range(100))})
    path = cache.path_for("ns", ("k",))
    path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
    assert cache.get("ns", ("k",)) is MISS


def test_hash_collision_with_wrong_key_is_miss(tmp_path):
    # An entry whose stored key string disagrees with the request must not
    # be served (defends against digest collisions / manual tampering).
    cache = ResultCache(tmp_path / "cache")
    cache.store("ns", ("k",), 1)
    path = cache.path_for("ns", ("k",))
    blob = json.loads(path.read_text())
    blob["key"] = "something else"
    path.write_text(json.dumps(blob))
    assert cache.get("ns", ("k",)) is MISS


def test_default_cache_honours_env(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "envcache"))
    cache = ResultCache.default()
    cache.store("ns", ("k",), 7)
    assert (tmp_path / "envcache").is_dir()
    assert cache.get("ns", ("k",)) == 7


# ----------------------------------------------------------------------
# map_cells + cache
# ----------------------------------------------------------------------
def test_cold_then_warm(tmp_path, calls_file):
    cache = ResultCache(tmp_path / "cache")
    cells = [1, 2, 3, 4]

    cold = map_cells(_counting_square, cells, jobs=1, cache=cache, namespace="sq")
    assert _n_calls(calls_file) == 4

    warm = map_cells(_counting_square, cells, jobs=1, cache=cache, namespace="sq")
    assert _n_calls(calls_file) == 4  # nothing recomputed
    assert warm == cold


def test_partial_warm_computes_only_missing(tmp_path, calls_file):
    cache = ResultCache(tmp_path / "cache")
    map_cells(_counting_square, [1, 2], jobs=1, cache=cache, namespace="sq")
    out = map_cells(_counting_square, [1, 2, 3], jobs=1, cache=cache, namespace="sq")
    assert _n_calls(calls_file) == 3  # only cell 3 was new
    assert out == [_square(1), _square(2), _square(3)]


def test_key_extra_invalidates(tmp_path, calls_file):
    # A changed parameter or bumped version tag must miss the old entries.
    cache = ResultCache(tmp_path / "cache")
    map_cells(_counting_square, [1, 2], jobs=1, cache=cache, namespace="sq", key_extra=("v1",))
    map_cells(_counting_square, [1, 2], jobs=1, cache=cache, namespace="sq", key_extra=("v2",))
    assert _n_calls(calls_file) == 4


def test_corrupted_cache_entry_recomputed_not_fatal(tmp_path, calls_file):
    cache = ResultCache(tmp_path / "cache")
    map_cells(_counting_square, [5], jobs=1, cache=cache, namespace="sq")
    path = cache.path_for("sq", (None, 5))
    assert path.exists()
    path.write_text("garbage")
    out = map_cells(_counting_square, [5], jobs=1, cache=cache, namespace="sq")
    assert out == [_square(5)]
    assert _n_calls(calls_file) == 2  # recomputed once, no crash


def test_parallel_run_populates_cache_for_serial(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    a = map_cells(_square, [1, 2, 3], jobs=3, cache=cache, namespace="sq")
    b = map_cells(_square, [1, 2, 3], jobs=1, cache=cache, namespace="sq")
    assert a == b
