"""Property test: every generated specification is lint-clean.

The generator's output feeds three different selection engines; a spec
that trips its own static analyzer (contradictory clock band, bad count,
type-mismatched constraint) would be a generator bug.  Hypothesis drives
the generator across the chapter-7 style sweep axes — DAG family, size,
CCR, target clock, knee threshold — and asserts every rendering in every
language analyzes clean.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.analysis import analyze_specification, lint_text
from repro.core.generator import ResourceSpecificationGenerator
from repro.core.size_model import (
    ObservationGrid,
    SizePredictionModel,
    build_observation_knees,
)
from repro.dag.montage import montage_dag, montage_level_counts
from repro.dag.random_dag import RandomDagSpec, generate_random_dag

TINY_GRID = ObservationGrid(
    sizes=(40, 120),
    ccrs=(0.01, 0.5),
    parallelisms=(0.4, 0.7),
    regularities=(0.1, 0.8),
    instances=1,
    thresholds=(0.001, 0.05),
)


@pytest.fixture(scope="module")
def size_model() -> SizePredictionModel:
    knees = build_observation_knees(TINY_GRID, seed=0)
    return SizePredictionModel.fit(TINY_GRID, knees)


def _dag(family: str, size: int, ccr: float, seed: int):
    if family == "montage":
        return montage_dag(montage_level_counts(size), ccr=ccr)
    rng = np.random.default_rng(seed)
    return generate_random_dag(
        RandomDagSpec(size=size, ccr=ccr, parallelism=0.6, regularity=0.5, density=0.4),
        rng,
    )


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    family=st.sampled_from(["montage", "random"]),
    size=st.integers(min_value=20, max_value=120),
    ccr=st.sampled_from([0.01, 0.1, 0.5]),
    clock_ghz=st.sampled_from([2.0, 3.0, 3.5]),
    threshold=st.sampled_from([0.001, 0.05]),
    seed=st.integers(min_value=0, max_value=3),
)
def test_every_generated_spec_is_lint_clean(
    size_model, family, size, ccr, clock_ghz, threshold, seed
):
    dag = _dag(family, size, ccr, seed)
    gen = ResourceSpecificationGenerator(size_model, target_clock_ghz=clock_ghz)
    # generate() already self-checks (raises on error-level findings); we
    # additionally assert zero *warnings*: generated specs must be pristine.
    spec = gen.generate(dag, threshold=threshold)
    report = analyze_specification(spec)
    assert len(report) == 0, report.render()
    # The per-language front door agrees with the merged self-check.
    for lang, text in (
        ("vgdl", spec.to_vgdl()),
        ("classad", spec.to_classad()),
        ("sword", spec.to_sword_xml()),
    ):
        assert not lint_text(text, lang=lang).has_errors
