"""Tests for the heuristic prediction model."""

import pytest

from repro.core.heuristic_model import (
    HeuristicObservation,
    HeuristicPredictionModel,
)
from repro.core.size_model import ObservationGrid


def _obs(size, ccr, winner="mcp"):
    turn = {"mcp": 100.0, "fca": 110.0, "fcfs": 120.0}
    turn[winner] = 90.0
    return HeuristicObservation(
        size=size,
        ccr=ccr,
        parallelism=0.5,
        regularity=0.5,
        best_turnaround=turn,
        best_size={h: 10 for h in turn},
    )


def _model():
    return HeuristicPredictionModel(
        observations=[
            _obs(50, 0.01, "fca"),
            _obs(50, 1.0, "fca"),
            _obs(5000, 0.01, "mcp"),
            _obs(5000, 1.0, "mcp"),
        ],
        heuristics=("mcp", "fca", "fcfs"),
    )


def test_winner():
    assert _obs(10, 0.1, "fca").winner == "fca"


def test_predict_nearest_neighbour():
    m = _model()
    assert m.predict(60, 0.01, 0.5, 0.5) == "fca"
    assert m.predict(4000, 0.9, 0.5, 0.5) == "mcp"


def test_predict_empty_model_rejected():
    with pytest.raises(ValueError):
        HeuristicPredictionModel(observations=[]).predict(10, 0.1, 0.5, 0.5)


def test_win_counts():
    m = _model()
    assert m.win_counts() == {"mcp": 2, "fca": 2, "fcfs": 0}


def test_decision_surface():
    m = _model()
    surface = {(n, ccr): w for n, ccr, w in m.decision_surface()}
    assert surface[(50, 0.01)] == "fca"
    assert surface[(5000, 1.0)] == "mcp"


def test_serialisation_roundtrip(tmp_path):
    m = _model()
    path = tmp_path / "h.json"
    m.save(path)
    loaded = HeuristicPredictionModel.load(path)
    assert loaded.heuristics == m.heuristics
    assert loaded.predict(60, 0.01, 0.5, 0.5) == "fca"
    assert loaded.observations[0].best_size["mcp"] == 10


def test_train_small_grid():
    grid = ObservationGrid(
        sizes=(40,), ccrs=(0.1,), parallelisms=(0.5,), regularities=(0.5,),
        instances=1,
    )
    m = HeuristicPredictionModel.train(grid, heuristics=("mcp", "fca"), seed=0)
    assert len(m.observations) == 1
    o = m.observations[0]
    assert set(o.best_turnaround) == {"mcp", "fca"}
    assert all(v > 0 for v in o.best_turnaround.values())
    assert m.predict(40, 0.1, 0.5, 0.5) in ("mcp", "fca")


def test_predict_for_dag(small_montage):
    m = _model()
    assert m.predict_for_dag(small_montage) in m.heuristics


def test_extrapolation_clamped_counted_and_warned_once():
    import warnings

    import repro.observe as observe

    m = _model()
    with observe.use_registry(observe.MetricsRegistry()) as reg:
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            # No DAG measures alpha > 1 or beta > 1: both get clamped.
            wild = m.predict(60, 0.01, 1.7, 0.5)
            m.predict(60, 0.01, 0.5, 9.0)  # second extrapolation
        clamped = m.predict(60, 0.01, 1.0, 0.5)
    assert wild == clamped == "fca"
    assert reg.snapshot()["counters"]["model.extrapolations"] == 2
    assert len([w for w in caught if "envelope" in str(w.message)]) == 1
