"""Disk-fault chaos matrix: every persistence surface, every fault kind.

The proof obligation for :mod:`repro.durability` is per-surface:

* an injected torn write / ``ENOSPC`` / ``EIO`` / crash-before-rename
  leaves **old state or new state, never a half state**;
* a fault that *does* land damage on disk (seeded bit flip, fsync-dropped
  power cut) is **detected and quarantined on read, never served**;
* an interrupted sweep or service **resumes bit-identical** to an
  uninterrupted run.

Surfaces covered: the sweep :class:`~repro.parallel.ResultCache` and its
per-cell checkpoints, both trained-model files, the service write-ahead
journal, and the CLI outcome/metrics exports.
"""

from __future__ import annotations

import json

import pytest

from repro.core.heuristic_model import HeuristicObservation, HeuristicPredictionModel
from repro.durability import CorruptArtifactError, use_disk_faults
from repro.faults import DiskFaultInjector, InjectedCrash, parse_disk_spec
from repro.journal import Journal, JournalError, load as load_journal
from repro.parallel import MISS, ResultCache, map_cells

# Module-level so map_cells can pickle it for multi-worker runs.
def _square_cell(cell: int) -> dict:
    return {"cell": cell, "value": cell * cell}


FAULT_KINDS = {
    "torn": DiskFaultInjector(torn_after=9),
    "enospc": DiskFaultInjector(err_kind="enospc"),
    "eio": DiskFaultInjector(err_kind="eio"),
    "crash_before_rename": DiskFaultInjector(crash_before_rename=True),
}


# ----------------------------------------------------------------------
# Cache + checkpoint surface
# ----------------------------------------------------------------------
@pytest.mark.parametrize("kind", sorted(FAULT_KINDS))
def test_cache_store_faults_leave_old_state(tmp_path, kind):
    import dataclasses

    cache = ResultCache(tmp_path)
    cache.store("ns", {"c": 1}, {"gen": "old"})
    inj = dataclasses.replace(FAULT_KINDS[kind])
    with use_disk_faults(inj):
        with pytest.raises((OSError, InjectedCrash)):
            cache.store("ns", {"c": 1}, {"gen": "new"})
    assert cache.get("ns", {"c": 1}) == {"gen": "old"}


def test_cache_bit_flip_quarantined_never_served(tmp_path):
    cache = ResultCache(tmp_path)
    with use_disk_faults(DiskFaultInjector(flip_bit=True, seed=5)):
        cache.store("ns", {"c": 1}, {"gen": "flipped"})
    # The damaged entry misses (quarantined), never returns wrong data.
    assert cache.get("ns", {"c": 1}) is MISS
    assert list(tmp_path.rglob("*.corrupt"))
    # Recompute-and-store heals the surface.
    cache.store("ns", {"c": 1}, {"gen": "good"})
    assert cache.get("ns", {"c": 1}) == {"gen": "good"}


def test_cache_power_cut_quarantined_never_served(tmp_path):
    cache = ResultCache(tmp_path)
    with use_disk_faults(DiskFaultInjector(drop_fsync=True, power_cut_keep=12)):
        with pytest.raises(InjectedCrash):
            cache.store("ns", {"c": 1}, {"gen": "cut"})
    assert cache.get("ns", {"c": 1}) is MISS


def test_interrupted_sweep_resumes_bit_identical(tmp_path):
    cells = list(range(8))
    reference = map_cells(
        _square_cell, cells, cache=ResultCache(tmp_path / "ref"), namespace="sq"
    )

    # The chaos run dies while checkpointing cell 4 (the 5th store).
    crashed_cache = ResultCache(tmp_path / "crash")
    with use_disk_faults(DiskFaultInjector(crash_before_rename=True, on_write=5)):
        with pytest.raises(InjectedCrash):
            map_cells(_square_cell, cells, cache=crashed_cache, namespace="sq")
    done_before = len(list((tmp_path / "crash").rglob("*.json")))
    assert 0 < done_before < len(cells)

    # Resume with the same cache: completed cells come back from disk,
    # the rest recompute, and the table is bit-identical to the
    # uninterrupted run.
    resumed = map_cells(_square_cell, cells, cache=crashed_cache, namespace="sq")
    assert json.dumps(resumed, sort_keys=True) == json.dumps(reference, sort_keys=True)


def test_sweep_rides_through_quarantined_checkpoint(tmp_path):
    cells = list(range(4))
    cache = ResultCache(tmp_path)
    with use_disk_faults(DiskFaultInjector(flip_bit=True, on_write=2, seed=11)):
        first = map_cells(_square_cell, cells, cache=cache, namespace="sq")
    # One checkpoint carries flipped bits; the next run must detect it,
    # recompute that cell, and still produce the right table.
    second = map_cells(_square_cell, cells, cache=cache, namespace="sq")
    assert first == second == [_square_cell(c) for c in cells]
    assert list(tmp_path.rglob("*.corrupt"))


# ----------------------------------------------------------------------
# Model surface (crash-simulation regression for save/load)
# ----------------------------------------------------------------------
def _tiny_heuristic_model() -> HeuristicPredictionModel:
    obs = HeuristicObservation(
        size=40, ccr=0.1, parallelism=0.5, regularity=0.5,
        best_turnaround={"mcp": 1.0, "dls": 2.0}, best_size={"mcp": 8, "dls": 6},
    )
    return HeuristicPredictionModel(observations=[obs], heuristics=("mcp", "dls"))


@pytest.mark.parametrize("kind", sorted(FAULT_KINDS))
def test_size_model_save_crash_keeps_old_copy(tmp_path, tiny_size_model, kind):
    import dataclasses

    path = tmp_path / "model.json"
    tiny_size_model.save(path)
    reference = type(tiny_size_model).load(path).to_dict()

    with use_disk_faults(dataclasses.replace(FAULT_KINDS[kind])):
        with pytest.raises((OSError, InjectedCrash)):
            tiny_size_model.save(path)
    # The only copy survives the crash mid-save, byte-exact.
    assert type(tiny_size_model).load(path).to_dict() == reference


def test_size_model_corruption_detected_on_load(tmp_path, tiny_size_model):
    path = tmp_path / "model.json"
    with use_disk_faults(DiskFaultInjector(flip_bit=True, seed=2)):
        tiny_size_model.save(path)
    with pytest.raises(CorruptArtifactError):
        type(tiny_size_model).load(path)
    assert (tmp_path / "model.json.corrupt").exists()


def test_heuristic_model_save_crash_keeps_old_copy(tmp_path):
    model = _tiny_heuristic_model()
    path = tmp_path / "h.json"
    model.save(path)
    with use_disk_faults(DiskFaultInjector(torn_after=15)):
        with pytest.raises(InjectedCrash):
            model.save(path)
    loaded = HeuristicPredictionModel.load(path)
    assert loaded.observations == model.observations
    assert loaded.heuristics == model.heuristics


def test_heuristic_model_power_cut_detected(tmp_path):
    model = _tiny_heuristic_model()
    path = tmp_path / "h.json"
    with use_disk_faults(DiskFaultInjector(drop_fsync=True, power_cut_keep=20)):
        with pytest.raises(InjectedCrash):
            model.save(path)
    with pytest.raises(CorruptArtifactError):
        HeuristicPredictionModel.load(path)


def test_model_files_cross_load_is_kind_error(tmp_path, tiny_size_model):
    # A size model passed where a heuristic model is expected fails with
    # a kind diagnostic, not a KeyError deep in from_dict.
    from repro.durability import ArtifactKindError

    path = tmp_path / "model.json"
    tiny_size_model.save(path)
    with pytest.raises(ArtifactKindError):
        HeuristicPredictionModel.load(path)
    assert path.exists()  # intact file is not quarantined


# ----------------------------------------------------------------------
# Journal surface
# ----------------------------------------------------------------------
INPUTS = "a" * 64


def _batch(i: int) -> dict:
    return {"kind": "batch", "i": i, "t": float(i), "ops": [["op", i]], "sha": f"s{i}"}


def test_journal_torn_append_resumes_cleanly(tmp_path):
    path = tmp_path / "j.jsonl"
    j = Journal.create(str(path), inputs=INPUTS)
    j.append(_batch(0))
    with use_disk_faults(DiskFaultInjector(torn_after=11, on_write=1)):
        with pytest.raises(InjectedCrash):
            j.append(_batch(1))
    j.close()
    # Old state: the intact prefix.  The torn tail is tolerated on load
    # and truncated on resume; the run then continues past the crash.
    loaded = load_journal(str(path))
    assert [b["i"] for b in loaded.batches] == [0]
    resumed = Journal.resume(str(path), inputs=INPUTS)
    resumed.append(_batch(0))  # replay verifies against the record
    resumed.append(_batch(1))  # ... then extends past the crash point
    resumed.close()
    assert [b["i"] for b in load_journal(str(path)).batches] == [0, 1]


def test_journal_enospc_append_keeps_prefix(tmp_path):
    path = tmp_path / "j.jsonl"
    j = Journal.create(str(path), inputs=INPUTS)
    j.append(_batch(0))
    with use_disk_faults(DiskFaultInjector(err_kind="enospc", on_write=1)):
        with pytest.raises(OSError):
            j.append(_batch(1))
    j.close()
    assert [b["i"] for b in load_journal(str(path)).batches] == [0]


def test_journal_bit_flip_refused_on_load(tmp_path):
    path = tmp_path / "j.jsonl"
    j = Journal.create(str(path), inputs=INPUTS)
    with use_disk_faults(DiskFaultInjector(flip_bit=True, on_write=1, seed=4)):
        j.append(_batch(0))
    j.append(_batch(1))
    j.close()
    # Mid-file damage (a later record exists) is a hard, named error:
    # replaying a flipped op would silently diverge the service state.
    with pytest.raises(JournalError, match="batch record 0"):
        load_journal(str(path))
    with pytest.raises(JournalError):
        Journal.resume(str(path), inputs=INPUTS)


# ----------------------------------------------------------------------
# CLI export surface (outcome / metrics): one-line errors, no traceback
# ----------------------------------------------------------------------
def test_serve_outcome_out_enospc_one_line_error(tmp_path, capsys):
    from repro.cli import main

    reqs = tmp_path / "requests.json"
    reqs.write_text(  # lint: allow — test fixture
        json.dumps([{"tenant": 0, "arrival_s": 0.0, "size": 5}])
    )
    out_path = tmp_path / "outcomes.json"
    with use_disk_faults(DiskFaultInjector(err_kind="enospc", on_write=0)):
        rc = main([
            "serve", "--scale", "smoke", "--seed", "3",
            "--requests", str(reqs), "--outcome-out", str(out_path),
        ])
    assert rc == 2
    err = capsys.readouterr().err
    assert err.startswith("error: cannot write outcomes to")
    assert "Traceback" not in err
    assert not out_path.exists()


def test_runner_metrics_out_enospc_one_line_error(tmp_path, capsys, monkeypatch):
    from repro.experiments import runner

    monkeypatch.setattr(runner, "run_chapter4", lambda scale, seed=0, jobs=None: None)
    metrics = tmp_path / "metrics.json"
    with use_disk_faults(DiskFaultInjector(err_kind="eio", on_write=0)):
        rc = runner.main(
            ["--chapter", "4", "--scale", "smoke", "--metrics-out", str(metrics)]
        )
    assert rc == 1
    err = capsys.readouterr().err
    assert "error: cannot write metrics to" in err
    assert "Traceback" not in err
    assert not metrics.exists()


@pytest.mark.slow
def test_select_outcome_out_enospc_one_line_error(tmp_path, capsys):
    from repro.cli import main
    from repro.core.generator import ResourceSpecification

    spec = ResourceSpecification(
        heuristic="mcp", size=24, min_size=20, clock_min_mhz=2000.0,
        clock_max_mhz=4000.0, connectivity="loose", threshold=0.001,
        dag_name="montage",
    )
    spec_path = tmp_path / "spec.json"
    spec_path.write_text(json.dumps(spec.to_dict()))  # lint: allow — fixture
    out_path = tmp_path / "outcome.json"
    with use_disk_faults(DiskFaultInjector(err_kind="enospc", on_write=0)):
        rc = main([
            "select", "--scale", "smoke", "--seed", "1",
            "--spec", str(spec_path), "--outcome-out", str(out_path),
        ])
    assert rc == 2
    err = capsys.readouterr().err
    assert "error: cannot write outcome to" in err
    assert "Traceback" not in err


# ----------------------------------------------------------------------
# Spec parsing / environment activation
# ----------------------------------------------------------------------
def test_parse_disk_spec_round_trip():
    inj = parse_disk_spec("err=eio,on_write=3,seed=7")
    assert (inj.err_kind, inj.on_write, inj.seed) == ("eio", 3, 7)
    inj = parse_disk_spec("drop_fsync=1,power_cut_keep=16")
    assert inj.drop_fsync and inj.power_cut_keep == 16


def test_parse_disk_spec_rejects_unknown_key():
    with pytest.raises(ValueError, match="unknown disk fault spec key"):
        parse_disk_spec("warp_drive=1")


def test_disk_from_env(monkeypatch):
    from repro.faults import DISK_ENV_VAR, disk_from_env

    monkeypatch.delenv(DISK_ENV_VAR, raising=False)
    assert disk_from_env() is None
    monkeypatch.setenv(DISK_ENV_VAR, "torn_after=5")
    inj = disk_from_env()
    assert inj is not None and inj.torn_after == 5
