"""Tests for the resource specification generator (Chapter VII)."""

import pytest

from repro.core.cost import UtilityFunction
from repro.core.generator import (
    LOOSE_CCR_THRESHOLD,
    ResourceSpecification,
    ResourceSpecificationGenerator,
)
from repro.dag.montage import montage_dag, montage_level_counts
from repro.dag.workflows import chain_dag
from repro.selection.classad import parse_classad
from repro.selection.sword import parse_sword_query
from repro.selection.vgdl import parse_vgdl


def _spec(**over):
    base = dict(
        heuristic="mcp",
        size=50,
        min_size=45,
        clock_min_mhz=2100.0,
        clock_max_mhz=3000.0,
        connectivity="tight",
        threshold=0.001,
        dag_name="demo",
    )
    base.update(over)
    return ResourceSpecification(**base)


def test_spec_validation():
    with pytest.raises(ValueError):
        _spec(size=0)
    with pytest.raises(ValueError):
        _spec(min_size=60)  # min > size
    with pytest.raises(ValueError):
        _spec(clock_max_mhz=1000.0)  # max < min
    with pytest.raises(ValueError):
        _spec(connectivity="fuzzy")


def test_vgdl_renders_and_parses():
    spec = _spec()
    parsed = parse_vgdl(spec.to_vgdl())
    agg = parsed.aggregates[0]
    assert agg.kind == "TightBagOf"
    assert (agg.lo, agg.hi) == (45, 50)


def test_vgdl_loose_connectivity():
    parsed = parse_vgdl(_spec(connectivity="loose").to_vgdl())
    assert parsed.aggregates[0].kind == "LooseBagOf"


def test_classad_renders_and_parses():
    ad = parse_classad(_spec().to_classad())
    assert "Ports" in ad
    port = ad["Ports"].items[0].ad
    assert "Count" in port
    assert "Constraint" in port


def test_sword_renders_and_parses():
    q = parse_sword_query(_spec().to_sword_xml())
    assert q.groups[0].num_machines == 50
    clock_req = [r for r in q.groups[0].numeric if r.attr == "clock"]
    assert clock_req and clock_req[0].required_lo == 2100.0


def test_describe_mentions_everything():
    text = _spec().describe()
    assert "MCP" in text
    assert "45–50" in text
    assert "tight" in text


def test_generator_basic(tiny_size_model, small_montage):
    gen = ResourceSpecificationGenerator(tiny_size_model)
    spec = gen.generate(small_montage)
    assert 1 <= spec.size <= small_montage.width
    assert spec.min_size <= spec.size
    assert spec.heuristic == "mcp"  # no heuristic model -> reference
    assert spec.connectivity == "loose"  # montage ccr 0.01 < threshold
    assert spec.dag_characteristics is not None


def test_generator_tight_for_communicating_dags(tiny_size_model, medium_dag):
    gen = ResourceSpecificationGenerator(tiny_size_model)
    spec = gen.generate(medium_dag)  # medium_dag has CCR 0.3
    assert spec.connectivity == "tight"


def test_generator_single_host_rule(tiny_size_model):
    dag = chain_dag(40, comp_cost=1.0, comm_cost=10.0)  # CCR 10, parallelism 0
    gen = ResourceSpecificationGenerator(tiny_size_model)
    assert gen.generate(dag).size == 1


def test_generator_clock_band(tiny_size_model, small_montage):
    gen = ResourceSpecificationGenerator(
        tiny_size_model, target_clock_ghz=3.5, heterogeneity_tolerance=0.2
    )
    spec = gen.generate(small_montage)
    assert spec.clock_max_mhz == pytest.approx(3500.0)
    assert spec.clock_min_mhz == pytest.approx(2800.0)


def test_generator_utility_picks_larger_threshold(tiny_size_model, small_montage):
    gen = ResourceSpecificationGenerator(tiny_size_model)
    plain = gen.generate(small_montage)
    cheap = gen.generate(
        small_montage, utility=UtilityFunction(degradation_unit=0.10, cost_unit=0.01)
    )
    # A cost-hungry utility never requests more hosts than the default.
    assert cheap.size <= plain.size


def test_generator_explicit_threshold(tiny_size_model, small_montage):
    gen = ResourceSpecificationGenerator(tiny_size_model)
    spec = gen.generate(small_montage, threshold=0.05)
    assert spec.threshold == 0.05


def test_loose_ccr_threshold_constant():
    assert 0.0 < LOOSE_CCR_THRESHOLD < 0.1


# ----------------------------------------------------------------------
# JSON round-trip (the `repro select --spec` input format).
# ----------------------------------------------------------------------
def test_to_dict_from_dict_round_trip():
    spec = _spec(connectivity="loose", threshold=0.05)
    assert ResourceSpecification.from_dict(spec.to_dict()) == spec


def test_from_dict_defaults_optional_fields():
    spec = ResourceSpecification.from_dict(
        dict(heuristic="mcp", size=10, min_size=8, clock_min_mhz=2000.0,
             clock_max_mhz=3000.0)
    )
    assert spec.connectivity == "tight"
    assert spec.size == 10


def test_from_dict_rejects_unknown_keys():
    data = _spec().to_dict()
    data["frobnication"] = 1
    with pytest.raises(ValueError):
        ResourceSpecification.from_dict(data)


def test_from_dict_rejects_missing_required_keys():
    data = _spec().to_dict()
    del data["size"]
    with pytest.raises(ValueError):
        ResourceSpecification.from_dict(data)


# ----------------------------------------------------------------------
# The generator's static-analysis self-check.
# ----------------------------------------------------------------------
def test_generate_self_check_passes_on_real_output(tiny_size_model, small_montage):
    # Default self_check=True: generation succeeds and the spec is clean.
    spec = ResourceSpecificationGenerator(tiny_size_model).generate(small_montage)
    from repro.analysis import analyze_specification

    assert not analyze_specification(spec).has_errors


def test_generate_self_check_catches_broken_renderer(tiny_size_model, small_montage, monkeypatch):
    # Sabotage a renderer: the self-check must refuse to return the spec.
    from repro.analysis.spec import SpecificationLintError

    def broken(self):
        return "VG =\nLooseBagOf(nodes) [4:8]\n{\n  nodes = [ (Speed >= 3) ]\n}"

    monkeypatch.setattr(ResourceSpecification, "to_vgdl", broken)
    gen = ResourceSpecificationGenerator(tiny_size_model)
    with pytest.raises(SpecificationLintError) as exc:
        gen.generate(small_montage)
    assert "SPEC104" in str(exc.value)
    assert exc.value.report.has_errors


def test_generate_self_check_can_be_disabled(tiny_size_model, small_montage, monkeypatch):
    def broken(self):
        return "VG = LooseBagOf("

    monkeypatch.setattr(ResourceSpecification, "to_vgdl", broken)
    gen = ResourceSpecificationGenerator(tiny_size_model, self_check=False)
    spec = gen.generate(small_montage)  # no raise
    assert spec.size >= 1
