"""Tests for the core DAG structure."""

import numpy as np
import pytest

from repro.dag.graph import DAG, CycleError, dag_from_edges


def test_empty_dag_rejected():
    with pytest.raises(ValueError):
        DAG(np.array([]), np.array([]), np.array([]), np.array([]))


def test_single_task():
    d = dag_from_edges([5.0], [])
    assert d.n == 1
    assert d.m == 0
    assert d.height == 1
    assert d.width == 1
    assert d.total_work() == 5.0
    assert list(d.entry_nodes) == [0]
    assert list(d.exit_nodes) == [0]


def test_self_loop_rejected():
    with pytest.raises(CycleError):
        dag_from_edges([1.0, 1.0], [(0, 0, 1.0)])


def test_cycle_rejected():
    with pytest.raises(CycleError):
        dag_from_edges([1.0, 1.0, 1.0], [(0, 1, 1.0), (1, 2, 1.0), (2, 0, 1.0)])


def test_negative_cost_rejected():
    with pytest.raises(ValueError):
        dag_from_edges([-1.0], [])
    with pytest.raises(ValueError):
        dag_from_edges([1.0, 1.0], [(0, 1, -2.0)])


def test_edge_ids_validated():
    with pytest.raises(ValueError):
        dag_from_edges([1.0, 1.0], [(0, 5, 1.0)])
    with pytest.raises(ValueError):
        dag_from_edges([1.0, 1.0], [(-1, 1, 1.0)])


def test_mismatched_edge_arrays_rejected():
    with pytest.raises(ValueError):
        DAG(
            comp=np.ones(2),
            edge_src=np.array([0]),
            edge_dst=np.array([1, 1]),
            edge_comm=np.array([1.0]),
        )


def test_levels_of_diamond(diamond_dag):
    assert list(diamond_dag.level) == [0, 1, 1, 2]
    assert diamond_dag.height == 3
    assert diamond_dag.width == 2
    assert list(diamond_dag.level_sizes()) == [1, 2, 1]


def test_level_is_longest_path():
    # 0 -> 1 -> 3, 0 -> 3 : node 3 is at level 2 (longest path), not 1.
    d = dag_from_edges([1, 1, 1, 1], [(0, 1, 0.1), (1, 3, 0.1), (0, 3, 0.1), (0, 2, 0.1)])
    assert d.level[3] == 2
    assert d.level[2] == 1


def test_parents_children(diamond_dag):
    assert sorted(diamond_dag.parents(3).tolist()) == [1, 2]
    assert sorted(diamond_dag.children(0).tolist()) == [1, 2]
    assert diamond_dag.parents(0).size == 0
    assert diamond_dag.children(3).size == 0


def test_in_out_edges_consistent(medium_dag):
    for v in [0, 5, 50, medium_dag.n - 1]:
        for e in medium_dag.in_edges(v):
            assert medium_dag.edge_dst[e] == v
        for e in medium_dag.out_edges(v):
            assert medium_dag.edge_src[e] == v


def test_degrees_sum_to_edge_count(medium_dag):
    assert medium_dag.in_degree.sum() == medium_dag.m
    assert medium_dag.out_degree.sum() == medium_dag.m


def test_topo_order_valid(medium_dag):
    pos = np.empty(medium_dag.n, dtype=int)
    pos[medium_dag.topo_order] = np.arange(medium_dag.n)
    assert np.all(pos[medium_dag.edge_src] < pos[medium_dag.edge_dst])


def test_bottom_levels_diamond(diamond_dag):
    bl = diamond_dag.bottom_levels(include_comm=True)
    # exit: 2; a: 3 + 1.5 + 2 = 6.5; b: 5 + 0.5 + 2 = 7.5; entry: 4 + max(1+6.5, 2+7.5)=13.5
    assert bl[3] == pytest.approx(2.0)
    assert bl[1] == pytest.approx(6.5)
    assert bl[2] == pytest.approx(7.5)
    assert bl[0] == pytest.approx(13.5)
    assert diamond_dag.critical_path_length() == pytest.approx(13.5)


def test_bottom_levels_no_comm(diamond_dag):
    bl = diamond_dag.bottom_levels(include_comm=False)
    assert bl[0] == pytest.approx(4 + 5 + 2)


def test_top_levels(diamond_dag):
    tl = diamond_dag.top_levels()
    assert tl[0] == 0.0
    assert tl[1] == pytest.approx(4 + 1)
    assert tl[2] == pytest.approx(4 + 2)
    assert tl[3] == pytest.approx(max(5 + 3 + 1.5, 6 + 5 + 0.5))


def test_top_plus_bottom_bounded_by_cp(medium_dag):
    tl = medium_dag.top_levels()
    bl = medium_dag.bottom_levels()
    cp = medium_dag.critical_path_length()
    assert np.all(tl + bl <= cp + 1e-9)
    # At least one node (on the critical path) attains the CP exactly.
    assert np.isclose((tl + bl).max(), cp)


def test_with_comm_scaled(diamond_dag):
    scaled = diamond_dag.with_comm_scaled(3.0)
    assert np.allclose(scaled.edge_comm, diamond_dag.edge_comm * 3)
    assert np.allclose(scaled.comp, diamond_dag.comp)
    # Original untouched.
    assert diamond_dag.edge_comm[0] == 1.0


def test_entry_exit_nodes(medium_dag):
    assert np.all(medium_dag.in_degree[medium_dag.entry_nodes] == 0)
    assert np.all(medium_dag.out_degree[medium_dag.exit_nodes] == 0)
    assert medium_dag.entry_nodes.size >= 1
    assert medium_dag.exit_nodes.size >= 1


def test_dag_from_edges_empty_edges():
    d = dag_from_edges([1.0, 2.0], [])
    assert d.m == 0
    assert d.height == 1
    assert d.width == 2
