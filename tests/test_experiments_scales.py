"""Tests for scale presets and table rendering."""

import pytest

from repro.experiments.scales import PAPER, SMALL, SMOKE, get_scale
from repro.experiments.tables import format_table


def test_get_scale():
    assert get_scale("smoke") is SMOKE
    assert get_scale("small") is SMALL
    assert get_scale("paper") is PAPER
    with pytest.raises(ValueError):
        get_scale("giant")


def test_paper_scale_matches_dissertation():
    assert PAPER.n_clusters == 1000
    assert PAPER.dag_size == 4469
    assert sum(PAPER.montage_levels) == 4469
    assert PAPER.size_grid.sizes == (100, 500, 1000, 5000, 10000)
    assert PAPER.size_grid.ccrs == (0.01, 0.1, 0.3, 0.5, 0.8, 1.0)
    assert PAPER.size_grid.parallelisms == (0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9)
    assert PAPER.size_grid.regularities == (0.01, 0.1, 0.3, 0.5, 0.8, 1.0)
    assert PAPER.size_grid.instances == 10


def test_smoke_is_small_and_fast():
    assert SMOKE.n_clusters <= 50
    assert max(SMOKE.size_grid.sizes) <= 500
    assert SMOKE.instances == 1


def test_scales_share_structure():
    for scale in (SMOKE, SMALL, PAPER):
        assert len(scale.montage_levels) == 7
        assert scale.size_grid.thresholds[0] == pytest.approx(0.001)


def test_format_table():
    text = format_table(
        [{"a": 1, "b": 2.5}, {"a": 10, "b": 0.00001}], title="T"
    )
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "a" in lines[1] and "b" in lines[1]
    assert len(lines) == 5


def test_format_table_empty():
    assert "(no rows)" in format_table([])
