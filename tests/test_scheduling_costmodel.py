"""Tests for the scheduling-time cost model."""

import pytest

from repro.scheduling import schedule_dag
from repro.scheduling.costmodel import (
    DEFAULT_COST_MODEL,
    DEFAULT_OPS_PER_SECOND,
    REFERENCE_SCHEDULER_CLOCK_GHZ,
    SchedulingCostModel,
    turnaround_time,
)
from repro.resources.collection import ResourceCollection


def test_reference_rate(diamond_dag, rc8):
    s = schedule_dag("mcp", diamond_dag, rc8)
    assert DEFAULT_COST_MODEL.scheduling_time(s) == pytest.approx(
        s.ops / DEFAULT_OPS_PER_SECOND
    )


def test_turnaround_is_sum(diamond_dag, rc8):
    s = schedule_dag("mcp", diamond_dag, rc8)
    assert turnaround_time(s) == pytest.approx(
        s.makespan + DEFAULT_COST_MODEL.scheduling_time(s)
    )


def test_faster_scheduler_scales_linearly(diamond_dag, rc8):
    s = schedule_dag("mcp", diamond_dag, rc8)
    fast = SchedulingCostModel(scheduler_clock_ghz=2 * REFERENCE_SCHEDULER_CLOCK_GHZ)
    assert fast.scheduling_time(s) == pytest.approx(
        DEFAULT_COST_MODEL.scheduling_time(s) / 2
    )


def test_with_scr(diamond_dag, rc8):
    s = schedule_dag("mcp", diamond_dag, rc8)
    half = DEFAULT_COST_MODEL.with_scr(0.5)
    assert half.scr == pytest.approx(0.5)
    assert half.scheduling_time(s) == pytest.approx(
        2 * DEFAULT_COST_MODEL.scheduling_time(s)
    )
    with pytest.raises(ValueError):
        DEFAULT_COST_MODEL.with_scr(0.0)


def test_validation():
    with pytest.raises(ValueError):
        SchedulingCostModel(ops_per_second=0)
    with pytest.raises(ValueError):
        SchedulingCostModel(scheduler_clock_ghz=-1)


def test_mcp_sched_time_grows_with_rc(medium_dag):
    t8 = DEFAULT_COST_MODEL.scheduling_time(
        schedule_dag("mcp", medium_dag, ResourceCollection.homogeneous(8))
    )
    t128 = DEFAULT_COST_MODEL.scheduling_time(
        schedule_dag("mcp", medium_dag, ResourceCollection.homogeneous(128))
    )
    assert t128 > 8 * t8
