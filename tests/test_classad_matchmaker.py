"""Tests for Matchmaking and Gangmatching."""

import pytest

from repro.selection.classad import (
    EvalContext,
    Matchmaker,
    evaluate,
    job_request_ad,
    machine_ad,
    machine_ads,
    parse_classad,
)
from repro.selection.classad.matchmaker import MatchError


def _machine(**attrs):
    base = {
        "Type": "Machine",
        "Arch": "XEON",
        "OpSys": "LINUX",
        "Memory": 1024,
        "KFlops": 2.8e6,
        "Clock": 2800,
        "LoadAvg": 0.0,
    }
    base.update(attrs)
    from repro.selection.classad.parser import ClassAd

    return ClassAd.from_values(base)


def test_bilateral_match():
    mm = Matchmaker([_machine(), _machine(Arch="OPTERON")])
    req = parse_classad('[ Requirements = Arch == "OPTERON"; Rank = Clock ]')
    matches = mm.match(req)
    assert len(matches) == 1
    assert evaluate(matches[0].machine["Arch"], EvalContext(matches[0].machine)) == "OPTERON"


def test_machine_requirements_enforced():
    busy = _machine(LoadAvg=0.9)
    busy["Requirements"] = parse_classad("[r = LoadAvg <= 0.5]")["r"]
    mm = Matchmaker([busy])
    req = parse_classad("[ Requirements = true ]")
    assert mm.match(req) == []


def test_rank_orders_matches():
    mm = Matchmaker([_machine(Clock=2000), _machine(Clock=3500), _machine(Clock=2800)])
    req = parse_classad("[ Requirements = true; Rank = Clock ]")
    matches = mm.match(req)
    clocks = [evaluate(m.machine["Clock"], EvalContext(m.machine)) for m in matches]
    assert clocks == [3500, 2800, 2000]


def test_match_limit():
    mm = Matchmaker([_machine() for _ in range(5)])
    req = parse_classad("[ Requirements = true ]")
    assert len(mm.match(req, limit=2)) == 2


def test_requirements_falls_back_to_constraint():
    mm = Matchmaker([_machine()])
    req = parse_classad('[ Constraint = Arch == "XEON" ]')
    assert len(mm.match(req)) == 1


def test_gangmatch_two_ports():
    mm = Matchmaker([_machine(Arch="OPTERON"), _machine(Arch="XEON")])
    req = parse_classad(
        """
        [ Type = "Job";
          Ports = {
            [ Label = a; Constraint = a.Arch == "OPTERON" ],
            [ Label = b; Constraint = b.Arch == "XEON" ]
          } ]
        """
    )
    gang = mm.gangmatch(req)
    assert gang is not None
    assert set(gang.bindings) == {"a", "b"}


def test_gangmatch_no_machine_reuse():
    mm = Matchmaker([_machine()])
    req = parse_classad(
        """
        [ Ports = {
            [ Label = a; Constraint = a.Arch == "XEON" ],
            [ Label = b; Constraint = b.Arch == "XEON" ]
          } ]
        """
    )
    assert mm.gangmatch(req) is None


def test_gangmatch_backtracks():
    # Port a would greedily take the fast OPTERON machine, leaving port b
    # (which requires OPTERON) unsatisfied; backtracking must recover.
    fast_opteron = _machine(Arch="OPTERON", Clock=3500)
    slow_opteron = _machine(Arch="OPTERON", Clock=2000)
    mm = Matchmaker([fast_opteron, slow_opteron])
    req = parse_classad(
        """
        [ Ports = {
            [ Label = a; Rank = a.Clock; Constraint = a.Type == "Machine" ],
            [ Label = b; Constraint = b.Arch == "OPTERON" && b.Clock >= 3000 ]
          } ]
        """
    )
    gang = mm.gangmatch(req)
    assert gang is not None
    a_clock = evaluate(gang.bindings["a"]["Clock"], EvalContext(gang.bindings["a"]))
    assert a_clock == 2000  # backtracked off the fast machine


def test_gangmatch_port_rank():
    mm = Matchmaker([_machine(Clock=2000), _machine(Clock=3200)])
    req = parse_classad(
        '[ Ports = { [ Label = a; Rank = a.Clock; Constraint = a.Type == "Machine" ] } ]'
    )
    gang = mm.gangmatch(req)
    assert evaluate(gang.bindings["a"]["Clock"], EvalContext(gang.bindings["a"])) == 3200


def test_gangmatch_count_extension():
    mm = Matchmaker([_machine(Clock=c) for c in (2000, 2400, 2800, 3200)])
    req = parse_classad(
        """
        [ Ports = {
            [ Label = cpu; Count = 3; Rank = cpu.Clock;
              Constraint = cpu.Clock >= 2200 ]
          } ]
        """
    )
    gang = mm.gangmatch(req)
    assert gang is not None
    assert len(gang.bindings) == 3
    clocks = sorted(
        evaluate(ad["Clock"], EvalContext(ad)) for ad in gang.bindings.values()
    )
    assert clocks == [2400, 2800, 3200]


def test_gangmatch_count_insufficient_machines():
    mm = Matchmaker([_machine(), _machine()])
    req = parse_classad(
        '[ Ports = { [ Label = cpu; Count = 3; Constraint = cpu.Type == "Machine" ] } ]'
    )
    assert mm.gangmatch(req) is None


def test_gangmatch_invalid_count():
    mm = Matchmaker([_machine()])
    req = parse_classad('[ Ports = { [ Label = cpu; Count = "three" ] } ]')
    with pytest.raises(MatchError):
        mm.gangmatch(req)


def test_gangmatch_requires_ports():
    mm = Matchmaker([_machine()])
    with pytest.raises(MatchError):
        mm.gangmatch(parse_classad("[ Type = \"Job\" ]"))


def test_machine_ad_builder(small_platform):
    ad = machine_ad(small_platform, 0)
    ctx = EvalContext(ad)
    assert evaluate(ad["Type"], ctx) == "Machine"
    assert evaluate(ad["Clock"], ctx) > 0
    ads = machine_ads(small_platform, [0, 1, 2])
    assert len(ads) == 3


def test_job_request_builder_matches_platform(small_platform):
    mm = Matchmaker(machine_ads(small_platform, range(0, small_platform.n_hosts, 17)))
    # Unqualified `Type` would resolve to the job's own Type = "Job"
    # (MY-first lookup), so the machine type must be TARGET-scoped.
    req = job_request_ad(
        requirements='TARGET.Type == "Machine" && Clock >= 1500', rank="Clock"
    )
    matches = mm.match(req)
    assert matches
    # Best-ranked first.
    clocks = [evaluate(m.machine["Clock"], EvalContext(m.machine)) for m in matches]
    assert clocks == sorted(clocks, reverse=True)
