"""Tests for the resilient selection pipeline (the degradation ladder)."""

import dataclasses

import numpy as np
import pytest

import repro.observe as observe
from repro.analysis.passes import subsumes
from repro.core.generator import ResourceSpecification
from repro.experiments.chapter4 import build_universe
from repro.experiments.scales import SMOKE
from repro.resources.binding import Binder
from repro.resources.churn import ChurnConfig, ChurnEvent, ChurnTrace, ResourceChurn
from repro.scheduling.base import schedule_dag
from repro.selection.pipeline import PipelineConfig, SelectionPipeline
from repro.selection.vgdl import VgES


@pytest.fixture(scope="module")
def platform():
    return build_universe(SMOKE, seed=0)


@pytest.fixture(scope="module")
def spec():
    return ResourceSpecification(
        heuristic="mcp",
        size=24,
        min_size=20,
        clock_min_mhz=2000.0,
        clock_max_mhz=4000.0,
        connectivity="loose",
        threshold=0.001,
        dag_name="montage",
    )


def _quiet(platform):
    return ResourceChurn.from_config(platform, ChurnConfig(), Binder(platform))


def _smaller(spec):
    return dataclasses.replace(spec, size=16, min_size=12)


def _clean_run(platform, dag, spec, **cfg):
    churn = _quiet(platform)
    pipeline = SelectionPipeline(platform, churn, PipelineConfig(**cfg))
    return pipeline.run(dag, spec)


# ----------------------------------------------------------------------
# Churn-free behaviour: the resilient loop must not perturb the happy path.
# ----------------------------------------------------------------------
def test_churn_free_run_matches_direct_select_and_schedule(platform, small_montage, spec):
    outcome = _clean_run(platform, small_montage, spec)

    vg = VgES(platform).find_and_bind(spec.to_vgdl())
    hosts = np.sort(vg.all_hosts())
    rc = platform.rc_from_hosts(hosts)
    schedule = schedule_dag("mcp", small_montage, rc)

    assert outcome.fulfilled
    assert outcome.backend == "vges" and outcome.spec_index == 0
    assert sorted(outcome.hosts) == [int(h) for h in hosts]
    assert outcome.turnaround_s == vg.selection_time + schedule.makespan
    assert outcome.baseline_turnaround_s == outcome.turnaround_s
    assert outcome.penalty == 0.0
    assert outcome.refusals == outcome.respecifications == outcome.backend_fallbacks == 0
    assert outcome.rebinds == 0 and outcome.segments == 1 and outcome.tasks_rescheduled == 0
    assert [a.result for a in outcome.attempts] == ["bound"]


def test_same_seed_reruns_are_bit_identical(platform, small_montage, spec):
    config = ChurnConfig(fail_rate=0.002, competitor_rate=0.01, utilization=0.25, seed=9)

    def run():
        churn = ResourceChurn.from_config(platform, config)
        return SelectionPipeline(platform, churn, alternatives=[_smaller(spec)]).run(
            small_montage, spec
        )

    assert run().to_dict() == run().to_dict()


# ----------------------------------------------------------------------
# Fulfillment failure: the ladder.
# ----------------------------------------------------------------------
def test_seeded_race_causes_exactly_one_respecification(platform, small_montage, spec):
    clean = _clean_run(platform, small_montage, spec)
    # A competitor binds some of the hosts we are about to pick, inside the
    # selection window (selection latency is ~n_clusters * 1e-5 s).
    trace = ChurnTrace(
        events=(ChurnEvent(1e-7, "bind", tuple(sorted(clean.hosts)[:10]), ref=0),)
    )
    churn = ResourceChurn(platform, trace, Binder(platform))
    pipeline = SelectionPipeline(
        platform, churn, PipelineConfig(max_retries=0), alternatives=[_smaller(spec)]
    )
    with observe.use_registry(observe.MetricsRegistry()) as reg:
        outcome = pipeline.run(small_montage, spec)

    assert outcome.fulfilled
    assert [a.result for a in outcome.attempts] == ["race", "bound"]
    assert outcome.respecifications == 1
    assert outcome.spec_index == 1
    assert outcome.final_spec == _smaller(spec)
    assert outcome.backend == "vges" and outcome.backend_fallbacks == 0
    # The outcome's counts are exactly the observe counters of the run.
    counters = reg.snapshot()["counters"]
    assert counters["pipeline.refusals"] == outcome.refusals == 1
    assert counters["pipeline.respecifications"] == outcome.respecifications
    assert "pipeline.backend_fallbacks" not in counters
    assert "pipeline.rebinds" not in counters


def test_refusal_completes_via_alternative_specification(platform, small_montage, spec):
    impossible = dataclasses.replace(
        spec, size=platform.n_hosts + 50, min_size=platform.n_hosts + 10
    )
    churn = _quiet(platform)
    pipeline = SelectionPipeline(
        platform, churn, PipelineConfig(max_retries=0), alternatives=[spec]
    )
    outcome = pipeline.run(small_montage, impossible)
    assert outcome.fulfilled
    assert outcome.spec_index == 1 and outcome.final_spec == spec
    assert outcome.backend == "vges" and outcome.backend_fallbacks == 0
    assert outcome.refusals == 1 and outcome.respecifications == 1
    assert outcome.attempts[0].result == "insufficient"


def test_exhausted_ladder_returns_unfulfilled_outcome(platform, small_montage, spec):
    impossible = dataclasses.replace(
        spec, size=platform.n_hosts + 50, min_size=platform.n_hosts + 10
    )
    churn = _quiet(platform)
    pipeline = SelectionPipeline(
        platform, churn, PipelineConfig(max_retries=1, backends=("vges", "sword")),
        alternatives=[],
    )
    outcome = pipeline.run(small_montage, impossible)
    assert not outcome.fulfilled
    assert outcome.turnaround_s is None and outcome.penalty is None
    assert outcome.hosts == () and outcome.final_spec is None
    # 2 backends x 1 spec x 2 attempts, every one a refusal.
    assert outcome.refusals == len(outcome.attempts) == 4
    assert outcome.backend_fallbacks == 1
    assert all(a.result == "insufficient" for a in outcome.attempts)


def test_retry_backoff_advances_virtual_clock(platform, small_montage, spec):
    impossible = dataclasses.replace(
        spec, size=platform.n_hosts + 50, min_size=platform.n_hosts + 10
    )
    churn = _quiet(platform)
    pipeline = SelectionPipeline(
        platform, churn, PipelineConfig(max_retries=2, backends=("vges",), backoff_s=5.0),
        alternatives=[],
    )
    outcome = pipeline.run(small_montage, impossible)
    times = [a.time_s for a in outcome.attempts]
    assert len(times) == 3
    # Backoff is bounded and jittered: attempt k waits 5 * 2**(k-1) * [0.5, 1.5).
    assert 2.5 - 1e-6 <= times[1] - times[0] <= 7.5 + 1e-6
    assert 5.0 - 1e-6 <= times[2] - times[1] <= 15.0 + 1e-6


# ----------------------------------------------------------------------
# Mid-execution host loss.
# ----------------------------------------------------------------------
def test_mid_execution_kill_reschedules_only_unfinished_tasks(platform, small_montage, spec):
    clean = _clean_run(platform, small_montage, spec)
    bind_time = clean.attempts[0].time_s
    makespan = clean.turnaround_s - bind_time
    hosts = np.asarray(sorted(clean.hosts), dtype=np.int64)
    schedule = schedule_dag("mcp", small_montage, platform.rc_from_hosts(hosts))
    kill_time = bind_time + 0.5 * makespan
    expected_unfinished = int((schedule.finish > kill_time - bind_time).sum())
    assert 0 < expected_unfinished < small_montage.n

    victim = int(hosts[0])
    trace = ChurnTrace(events=(ChurnEvent(kill_time, "fail", (victim,), ref=0),))
    churn = ResourceChurn(platform, trace, Binder(platform))
    with observe.use_registry(observe.MetricsRegistry()) as reg:
        outcome = SelectionPipeline(platform, churn).run(small_montage, spec)

    assert outcome.fulfilled
    assert outcome.segments == 2
    assert outcome.rebinds == 1
    assert outcome.tasks_rescheduled == expected_unfinished
    # The DAG still completes; the clock moved past the kill.  (Turnaround
    # may even beat the clean run: completed parents' outputs are staged,
    # so the restarted sub-DAG sheds its cross-segment edges.)
    assert outcome.turnaround_s > kill_time
    assert outcome.penalty is not None
    counters = reg.snapshot()["counters"]
    assert counters["pipeline.rebinds"] == outcome.rebinds
    assert counters["pipeline.tasks_rescheduled"] == outcome.tasks_rescheduled


# ----------------------------------------------------------------------
# The experiment cell: jobs-count independence (slow).
# ----------------------------------------------------------------------
@pytest.mark.slow
def test_churn_penalty_sweep_is_jobs_independent(tiny_size_model):
    from repro.experiments.chapter7 import churn_penalty_sweep

    serial = churn_penalty_sweep(tiny_size_model, SMOKE, rates=(0.0, 0.01), reps=1, jobs=1)
    parallel = churn_penalty_sweep(tiny_size_model, SMOKE, rates=(0.0, 0.01), reps=1, jobs=2)
    assert serial == parallel


# ----------------------------------------------------------------------
# Static preflight pruning of the respecification ladder.
# ----------------------------------------------------------------------
def test_unsatisfiable_alternative_is_pruned_not_submitted(platform, small_montage, spec):
    impossible_original = dataclasses.replace(
        spec, size=platform.n_hosts + 50, min_size=platform.n_hosts + 10
    )
    unsat_alt = dataclasses.replace(spec, clock_min_mhz=99999.0, clock_max_mhz=99999.0)
    ok_alt = _smaller(spec)
    churn = _quiet(platform)
    pipeline = SelectionPipeline(
        platform,
        churn,
        PipelineConfig(max_retries=0),
        alternatives=[unsat_alt, ok_alt],
    )
    with observe.use_registry(observe.MetricsRegistry()) as reg:
        outcome = pipeline.run(small_montage, impossible_original)

    assert outcome.fulfilled
    # The unsatisfiable alternative was never attempted; its ladder index
    # stays burnt, so the fulfilling rung is index 2, not 1.
    assert outcome.spec_index == 2
    assert outcome.final_spec == ok_alt
    assert [a.spec_index for a in outcome.attempts] == [0, 2]
    assert outcome.respecs_pruned == 1
    counters = reg.snapshot()["counters"]
    assert counters["pipeline.respecs_pruned"] == outcome.respecs_pruned
    assert "respecs_pruned" in outcome.to_dict()


def test_dominated_rung_after_the_bind_is_never_reached(platform, small_montage, spec):
    # The ladder is lazy: a dominated rung sitting *after* the fulfilling
    # one is never even examined, so nothing is counted as pruned.
    impossible = dataclasses.replace(
        spec, size=platform.n_hosts + 50, min_size=platform.n_hosts + 10
    )
    dominated = dataclasses.replace(
        spec, size=26, min_size=22, clock_min_mhz=2500.0, clock_max_mhz=3500.0
    )
    churn = _quiet(platform)
    pipeline = SelectionPipeline(
        platform,
        churn,
        PipelineConfig(max_retries=0),
        alternatives=[spec, dominated],
    )
    with observe.use_registry(observe.MetricsRegistry()):
        outcome = pipeline.run(small_montage, impossible)
    assert outcome.fulfilled and outcome.spec_index == 1
    assert outcome.respecs_pruned == 0


def test_subsumption_pruning_skips_dominated_rung(platform, small_montage, spec):
    # The original is tried and refused (raced), then the ladder climbs:
    # the first alternative is dominated by the original, so it is pruned;
    # the second fulfills at its burnt-index position.
    clean = _clean_run(platform, small_montage, spec)
    trace = ChurnTrace(
        events=(ChurnEvent(1e-7, "bind", tuple(sorted(clean.hosts)[:10]), ref=0),)
    )
    churn = ResourceChurn(platform, trace, Binder(platform))
    dominated = dataclasses.replace(
        spec, size=26, min_size=22, clock_min_mhz=2500.0, clock_max_mhz=3500.0
    )
    assert subsumes(spec, dominated)
    pipeline = SelectionPipeline(
        platform,
        churn,
        PipelineConfig(max_retries=0),
        alternatives=[dominated, _smaller(spec)],
    )
    with observe.use_registry(observe.MetricsRegistry()) as reg:
        outcome = pipeline.run(small_montage, spec)

    assert outcome.fulfilled
    assert outcome.spec_index == 2 and outcome.final_spec == _smaller(spec)
    assert [a.spec_index for a in outcome.attempts] == [0, 2]
    assert outcome.respecs_pruned == 1
    counters = reg.snapshot()["counters"]
    assert counters["pipeline.respecs_pruned"] == 1


def test_subsumption_pruning_preserves_seeded_replay(platform, small_montage, spec):
    # Bit-identity net: with a seeded churn trace, a ladder carrying a
    # dominated (pruned) rung selects exactly what the same ladder without
    # it selects — pruning burns the index but never perturbs the outcome.
    config = ChurnConfig(fail_rate=0.002, competitor_rate=0.01, utilization=0.25, seed=9)
    dominated = dataclasses.replace(spec, size=26, min_size=22)

    def run(alternatives):
        churn = ResourceChurn.from_config(platform, config)
        return SelectionPipeline(platform, churn, alternatives=alternatives).run(
            small_montage, spec
        )

    with_pruned = run([dominated, _smaller(spec)]).to_dict()
    without = run([_smaller(spec)]).to_dict()
    # The only admissible difference is the pruning counter and the burnt
    # ladder indices; strip both and demand bit-identity.
    for d in (with_pruned, without):
        d.pop("respecs_pruned")
        d.pop("spec_index")
        d.pop("attempts")
        d.pop("final_spec")
    assert with_pruned == without


def test_original_spec_is_never_pruned(platform, small_montage, spec):
    # The original request is statically unsatisfiable — the pipeline must
    # still attempt it (refusal semantics), not silently skip it.
    impossible = dataclasses.replace(spec, clock_min_mhz=99999.0, clock_max_mhz=99999.0)
    churn = _quiet(platform)
    pipeline = SelectionPipeline(
        platform, churn, PipelineConfig(max_retries=0), alternatives=[]
    )
    with observe.use_registry(observe.MetricsRegistry()):
        outcome = pipeline.run(small_montage, impossible)
    assert not outcome.fulfilled
    assert outcome.attempts and outcome.attempts[0].spec_index == 0
    assert outcome.respecs_pruned == 0


# ----------------------------------------------------------------------
# Deadline budgets: the ladder aborts instead of grinding on.
# ----------------------------------------------------------------------
def test_deadline_budget_aborts_ladder_with_structured_outcome(platform, small_montage, spec):
    impossible = dataclasses.replace(
        spec, size=platform.n_hosts + 50, min_size=platform.n_hosts + 10
    )
    churn = _quiet(platform)
    # Generous retries would normally burn virtual time across 3
    # backends; a tiny deadline cuts the ladder short instead.
    pipeline = SelectionPipeline(
        platform, churn, PipelineConfig(max_retries=5, deadline_s=1e-6), alternatives=[]
    )
    with observe.use_registry(observe.MetricsRegistry()) as reg:
        outcome = pipeline.run(small_montage, impossible)
    assert not outcome.fulfilled
    assert outcome.abort_reason == "deadline_exceeded"
    assert outcome.attempts[-1].result == "deadline_exceeded"
    assert reg.snapshot()["counters"]["pipeline.deadline_aborts"] == 1
    assert outcome.to_dict()["abort_reason"] == "deadline_exceeded"


def test_unbounded_deadline_is_the_default_and_changes_nothing(platform, small_montage, spec):
    bounded = _clean_run(platform, small_montage, spec, deadline_s=1e9)
    unbounded = _clean_run(platform, small_montage, spec)
    assert bounded.to_dict() == unbounded.to_dict()
    assert unbounded.abort_reason is None


def test_replay_bit_identical_with_preflight_enabled(platform, small_montage, spec):
    # Seeded churn + an unsatisfiable alternative in the ladder: the
    # analyzer consults only the static platform, so replay stays
    # bit-identical even though pruning happens mid-run.
    config = ChurnConfig(fail_rate=0.002, competitor_rate=0.01, utilization=0.25, seed=9)
    unsat_alt = dataclasses.replace(spec, clock_min_mhz=99999.0, clock_max_mhz=99999.0)

    def run():
        churn = ResourceChurn.from_config(platform, config)
        return SelectionPipeline(
            platform, churn, alternatives=[unsat_alt, _smaller(spec)]
        ).run(small_montage, spec)

    assert run().to_dict() == run().to_dict()
